/**
 * @file
 * Direct unit tests for the mem layer: set-associative LRU eviction
 * order (including the per-set MRU fast path), TLB reach and true-
 * LRU replacement in the O(1) list+hash implementation, and the
 * warm-vs-timing split of the hierarchy.
 */

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

#include "check.hh"

using namespace smarts;

namespace {

/** addr of line @p line for a 64B-line cache. */
constexpr std::uint32_t
lineAddr(std::uint32_t line)
{
    return line * 64;
}

void
testCacheLruEvictionOrder()
{
    // 2 sets x 2 ways of 64B lines. Even lines -> set 0.
    mem::Cache cache("t", {256, 2, 64, 1});

    // Fill set 0 with lines 0 and 2.
    CHECK(!cache.access(lineAddr(0), false).hit);
    CHECK(!cache.access(lineAddr(2), false).hit);
    CHECK(cache.probe(lineAddr(0)));
    CHECK(cache.probe(lineAddr(2)));

    // Touch line 0: line 2 becomes LRU.
    CHECK(cache.access(lineAddr(0), false).hit);

    // Line 4 (set 0) evicts line 2, not line 0.
    CHECK(!cache.access(lineAddr(4), false).hit);
    CHECK(cache.probe(lineAddr(0)));
    CHECK(!cache.probe(lineAddr(2)));
    CHECK(cache.probe(lineAddr(4)));

    // Set 1 was never touched.
    CHECK(!cache.probe(lineAddr(1)));

    // Eviction continues in strict LRU order: line 0 is now LRU
    // (line 4 is the most recent fill), so line 6 evicts line 0.
    CHECK(!cache.access(lineAddr(6), false).hit);
    CHECK(!cache.probe(lineAddr(0)));
    CHECK(cache.probe(lineAddr(4)));
    CHECK(cache.probe(lineAddr(6)));

    CHECK_EQ(cache.misses(), 4u);
    CHECK_EQ(cache.accesses(), 5u);
}

void
testCacheMruFastPathKeepsLru()
{
    // Hammering the MRU line must not disturb LRU bookkeeping.
    mem::Cache cache("t", {256, 2, 64, 1});
    cache.access(lineAddr(0), false);
    cache.access(lineAddr(2), false);
    for (int i = 0; i < 100; ++i)
        CHECK(cache.access(lineAddr(2), false).hit);
    // Line 0 is LRU despite 100 intervening MRU hits.
    CHECK(!cache.access(lineAddr(4), false).hit);
    CHECK(!cache.probe(lineAddr(0)));
    CHECK(cache.probe(lineAddr(2)));
}

void
testCacheStoresAllocateLikeLoads()
{
    mem::Cache cache("t", {256, 2, 64, 1});
    CHECK(!cache.access(lineAddr(0), true).hit);
    CHECK(cache.access(lineAddr(0), false).hit);
    CHECK_EQ(cache.misses(), 1u);
}

void
testCacheReset()
{
    mem::Cache cache("t", {256, 2, 64, 1});
    cache.access(lineAddr(0), false);
    cache.reset();
    CHECK(!cache.probe(lineAddr(0)));
    CHECK_EQ(cache.accesses(), 0u);
    CHECK_EQ(cache.misses(), 0u);
}

void
testTlbReach()
{
    // 4 entries x 4KB pages: reach is 16KB.
    mem::Tlb tlb({4, 4096, 30});
    for (std::uint32_t p = 0; p < 4; ++p)
        CHECK(tlb.access(p * 4096)); // cold misses.
    for (std::uint32_t p = 0; p < 4; ++p)
        CHECK(!tlb.access(p * 4096)); // all resident.
    CHECK_EQ(tlb.misses(), 4u);

    // Within-page offsets share the entry.
    CHECK(!tlb.access(3 * 4096 + 4092));

    // A 5th page evicts the LRU page (page 0 after the re-touch
    // sequence 0,1,2,3 above).
    CHECK(tlb.access(4 * 4096));
    CHECK(tlb.access(0 * 4096)); // page 0 was the victim.
    CHECK(!tlb.access(4 * 4096));
}

void
testTlbLruOrderUnderReuse()
{
    mem::Tlb tlb({4, 4096, 30});
    for (std::uint32_t p = 0; p < 4; ++p)
        tlb.access(p * 4096);
    // Re-touch pages 0 and 1: pages 2 then 3 are the LRU victims.
    tlb.access(0);
    tlb.access(4096);
    CHECK(tlb.access(4 * 4096)); // evicts page 2.
    CHECK(tlb.access(5 * 4096)); // evicts page 3.
    CHECK(!tlb.access(0));       // pages 0 and 1 survived.
    CHECK(!tlb.access(4096));
    CHECK(tlb.access(2 * 4096)); // pages 2 and 3 are gone.
}

void
testTlbSingleEntry()
{
    mem::Tlb tlb({1, 4096, 30});
    CHECK(tlb.access(0));
    CHECK(!tlb.access(4));
    CHECK(tlb.access(4096));
    CHECK(tlb.access(0));
    CHECK_EQ(tlb.misses(), 3u);
}

void
testTlbReset()
{
    mem::Tlb tlb({4, 4096, 30});
    tlb.access(0);
    tlb.access(4096);
    tlb.reset();
    CHECK_EQ(tlb.misses(), 0u);
    CHECK(tlb.access(0)); // cold again.
}

void
testHierarchyWarmMatchesTiming()
{
    mem::HierarchyConfig cfg;
    cfg.l1i = {256, 2, 64, 1};
    cfg.l1d = {256, 2, 64, 2};
    cfg.l2 = {1024, 2, 64, 12};
    cfg.itlb = {4, 4096, 30};
    cfg.dtlb = {4, 4096, 30};
    cfg.memLatency = 80;

    // A timing load after a warm load of the same line hits L1 with
    // the same latency as after a timing load: warming installs the
    // identical state.
    mem::MemHierarchy warm(cfg);
    warm.warmLoad(lineAddr(0));
    const mem::MemResult viaWarm = warm.load(lineAddr(0));

    mem::MemHierarchy timed(cfg);
    timed.load(lineAddr(0));
    const mem::MemResult viaTimed = timed.load(lineAddr(0));

    CHECK(viaWarm.level == mem::ServedBy::L1);
    CHECK(viaTimed.level == mem::ServedBy::L1);
    CHECK_EQ(viaWarm.latency, viaTimed.latency);
    CHECK_EQ(viaWarm.latency, cfg.l1d.latency);
}

void
testHierarchyLevelsAndLatencies()
{
    mem::HierarchyConfig cfg;
    cfg.l1i = {256, 2, 64, 1};
    cfg.l1d = {256, 2, 64, 2};
    cfg.l2 = {1024, 2, 64, 12};
    cfg.itlb = {4, 4096, 30};
    cfg.dtlb = {4, 4096, 30};
    cfg.memLatency = 80;
    mem::MemHierarchy h(cfg);

    // Cold: memory + TLB miss.
    const mem::MemResult cold = h.load(lineAddr(0));
    CHECK(cold.level == mem::ServedBy::Memory);
    CHECK(cold.tlbMiss);
    CHECK_EQ(cold.latency, 30u + 2u + 12u + 80u);

    // Evict line 0 from L1d (2 ways/set, 2 sets): lines 2 and 4
    // alias to set 0. L2 (2 ways x 8 sets... 1KB/2/64 = 8 sets)
    // still holds line 0, so the re-access is an L2 hit.
    h.load(lineAddr(2));
    h.load(lineAddr(4));
    const mem::MemResult l2hit = h.load(lineAddr(0));
    CHECK(l2hit.level == mem::ServedBy::L2);
    CHECK(!l2hit.tlbMiss);
    CHECK_EQ(l2hit.latency, 2u + 12u);
}

} // namespace

int
main()
{
    testCacheLruEvictionOrder();
    testCacheMruFastPathKeepsLru();
    testCacheStoresAllocateLikeLoads();
    testCacheReset();
    testTlbReach();
    testTlbLruOrderUnderReuse();
    testTlbSingleEntry();
    testTlbReset();
    testHierarchyWarmMatchesTiming();
    testHierarchyLevelsAndLatencies();
    TEST_MAIN_SUMMARY();
}
