/**
 * @file
 * csv_diff: tolerance-aware CSV comparator for the golden-value
 * regression tests. Cells that parse as numbers (optionally with a
 * trailing % or x unit) are compared within a relative + absolute
 * tolerance; everything else must match exactly. Exit status is the
 * number of differing cells (0 = match), and each difference is
 * reported with its row/column coordinates.
 *
 * Usage: csv_diff <golden.csv> <actual.csv> [rtol] [atol]
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::vector<std::string>>
readCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "csv_diff: cannot open '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::vector<std::vector<std::string>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::vector<std::string> cells;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            cells.push_back(cell);
        if (!line.empty() && line.back() == ',')
            cells.emplace_back();
        rows.push_back(std::move(cells));
    }
    return rows;
}

/** Parse "1.23", "+4.5%", "12x" and friends; false if non-numeric. */
bool
parseNumber(const std::string &cell, double &value)
{
    std::string text = cell;
    if (!text.empty() && (text.back() == '%' || text.back() == 'x'))
        text.pop_back();
    if (text.empty())
        return false;
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: csv_diff <golden> <actual> [rtol] [atol]\n");
        return 2;
    }
    const double rtol = argc > 3 ? std::atof(argv[3]) : 0.02;
    const double atol = argc > 4 ? std::atof(argv[4]) : 1e-9;

    const auto golden = readCsv(argv[1]);
    const auto actual = readCsv(argv[2]);

    int differences = 0;
    if (golden.size() != actual.size()) {
        std::fprintf(stderr,
                     "csv_diff: row count %zu (golden) vs %zu (actual)\n",
                     golden.size(), actual.size());
        ++differences;
    }
    const std::size_t rows = std::min(golden.size(), actual.size());
    for (std::size_t r = 0; r < rows; ++r) {
        if (golden[r].size() != actual[r].size()) {
            std::fprintf(
                stderr,
                "csv_diff: row %zu: %zu columns (golden) vs %zu\n",
                r + 1, golden[r].size(), actual[r].size());
            ++differences;
        }
        const std::size_t cols =
            std::min(golden[r].size(), actual[r].size());
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &g = golden[r][c];
            const std::string &a = actual[r][c];
            double gv, av;
            if (parseNumber(g, gv) && parseNumber(a, av)) {
                const double tol = atol + rtol * std::fabs(gv);
                if (std::fabs(gv - av) <= tol)
                    continue;
                std::fprintf(stderr,
                             "csv_diff: row %zu col %zu: %s vs %s "
                             "(tol %.3g)\n",
                             r + 1, c + 1, g.c_str(), a.c_str(), tol);
                ++differences;
            } else if (g != a) {
                std::fprintf(stderr,
                             "csv_diff: row %zu col %zu: '%s' vs '%s'\n",
                             r + 1, c + 1, g.c_str(), a.c_str());
                ++differences;
            }
        }
    }
    if (differences)
        std::fprintf(stderr, "csv_diff: %d differing cell(s)\n",
                     differences);
    return differences ? 1 : 0;
}
