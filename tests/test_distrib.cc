/**
 * @file
 * Tests for the distributed shard runner (smarts::distrib,
 * docs/distributed-runners.md): manifest and result-file
 * roundtrips; the refusal matrix (truncated, corrupt,
 * version-bumped, mis-keyed, wrong-study, wrong-job,
 * inconsistent-payload files are REJECTED with a diagnostic, never
 * merged); leader-merge bit-identity against serial run() at 1, 2
 * and 5 concurrent runners; duplicate-claim benignity (identical
 * bytes either way); abandoned-claim recovery via the stale-claim
 * window; the runner's capture fallback when the store's library
 * was built under a different shard plan; the exponential
 * idle-poll backoff (PollBackoff) of the wait loops; the elastic
 * layer — weighted per-runner claim order, claim heartbeats vs
 * stealing, the build-fingerprint handshake, unit-range studies
 * (seeding, splitting, overlapping-result tiling) — and a chaos
 * drill (runner dies mid-drain, late joiner steals and finishes,
 * merge stays bit-identical with bounded duplication).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "distrib/leader.hh"
#include "distrib/protocol.hh"
#include "distrib/runner.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "workloads/benchmark.hh"

#include "check.hh"
#include "estimate_fingerprint.hh"

using namespace smarts;
using smarts::test::fingerprint;
namespace fs = std::filesystem;

namespace {

/**
 * RunnerOptions with only the fields the tests vary: names every
 * runner and sets the steal window, leaving the hooks defaulted
 * (spelled out so -Wmissing-field-initializers stays quiet under
 * -Wextra -Werror).
 */
distrib::RunnerOptions
runnerOpts(std::string id, double staleSeconds)
{
    distrib::RunnerOptions options;
    options.id = std::move(id);
    options.staleClaimSeconds = staleSeconds;
    return options;
}

const char *kQueue = "test_distrib_queue";
const char *kStore = "test_distrib_store";

core::SamplingConfig
defaultSampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 10;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

std::uint64_t
streamLengthOf(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config)
{
    core::SimSession probe(spec, config);
    return probe.fastForward(~0ull >> 1, core::WarmingMode::None);
}

core::SmartsEstimate
serialRun(const workloads::BenchmarkSpec &spec,
          const uarch::MachineConfig &config,
          const core::SamplingConfig &sc)
{
    core::SimSession session(spec, config);
    return core::SystematicSampler(sc).run(session);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Rewrite @p path's trailing checksum after tampering with it. */
void
resealChecksum(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::size_t payload = bytes.size() - 8;
    const std::uint64_t sum = util::fnv1a(bytes.data(), payload);
    for (int i = 0; i < 8; ++i)
        bytes[payload + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    writeFileBytes(path, bytes);
}

/**
 * Publish @p manifest into an emptied queue. The explicit wipe
 * matters: publishStudy deliberately PRESERVES the queue when the
 * incoming study is identical (tested below), and these suites
 * re-run the same study and need fresh claims/results each time.
 */
void
resetQueue(const distrib::JobManifest &manifest)
{
    fs::remove_all(kQueue);
    std::string error;
    CHECK(distrib::publishStudy(kQueue, manifest, &error));
    CHECK_EQ(error, std::string());
}

void
testManifestRoundtripAndRefusals()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);

    const distrib::JobManifest manifest = distrib::planStudy(
        spec, {config, uarch::MachineConfig::sixteenWay()}, sc,
        length, 4);
    CHECK_EQ(manifest.configs.size(), std::size_t(2));
    CHECK_EQ(manifest.plan.size(), std::size_t(4));
    CHECK_EQ(manifest.jobCount(), std::size_t(8));
    CHECK(manifest.studyId != 0);

    // The study id is a deterministic digest: same study, same id;
    // any parameter change, a different id.
    CHECK_EQ(distrib::planStudy(spec, manifest.configs, sc, length, 4)
                 .studyId,
             manifest.studyId);
    core::SamplingConfig scOther = sc;
    scOther.offset = 1;
    CHECK(distrib::planStudy(spec, manifest.configs, scOther, length,
                             4)
              .studyId != manifest.studyId);

    const std::string path =
        (fs::path(kQueue) / "roundtrip.smjm").string();
    std::string error;
    CHECK(manifest.save(path, &error));
    const auto loaded = distrib::JobManifest::load(path, &error);
    CHECK(loaded.has_value());
    CHECK_EQ(error, std::string());
    {
        util::BinaryWriter a, b;
        manifest.serialize(a);
        loaded->serialize(b);
        CHECK(a.buffer() == b.buffer());
    }

    const std::vector<std::uint8_t> good = readFileBytes(path);
    CHECK(good.size() > 64);

    auto expectRefusal = [&](const char *what, const char *needle) {
        std::string why;
        const auto result = distrib::JobManifest::load(path, &why);
        CHECK(!result.has_value());
        const bool mentions = why.find(needle) != std::string::npos;
        CHECK(mentions);
        if (!mentions)
            std::fprintf(stderr,
                         "  %s: diagnostic \"%s\" lacks \"%s\"\n",
                         what, why.c_str(), needle);
    };

    // Truncation and corruption land on the checksum.
    writeFileBytes(path, std::vector<std::uint8_t>(
                             good.begin(),
                             good.begin() + good.size() / 2));
    expectRefusal("truncation", "checksum");
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0x20;
        writeFileBytes(path, bad);
        expectRefusal("corruption", "checksum");
    }

    // Version bump, resealed: refused by number.
    {
        std::vector<std::uint8_t> bad = good;
        bad[8] = 3; // version u32 sits right after the 8-byte magic.
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("version bump", "protocol version 3");
    }

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("magic", "not a smarts job manifest");
    }

    // A malformed plan no planShards() could produce.
    {
        distrib::JobManifest bad = manifest;
        bad.plan[0].runsTail = true;
        CHECK(bad.save(path, &error));
        expectRefusal("malformed plan", "plan geometry");
    }

    // A geometry hash this build's warmGeometryHash cannot
    // reproduce: leader/runner builds diverged.
    {
        distrib::JobManifest bad = manifest;
        bad.geometryHashes[1] ^= 1;
        CHECK(bad.save(path, &error));
        expectRefusal("foreign geometry hash", "does not reproduce");
    }

    // Build-fingerprint handshake: planStudy stamps this build's
    // fingerprint, and a manifest from a diverged build (different
    // timing model or protocol) refuses at load, naming both
    // fingerprints.
    CHECK_EQ(manifest.fingerprint, distrib::buildFingerprint());
    CHECK_EQ(distrib::buildFingerprint(),
             distrib::buildFingerprint()); // cached, stable.
    {
        distrib::JobManifest bad = manifest;
        bad.fingerprint ^= 0x5a5a;
        CHECK(bad.save(path, &error));
        expectRefusal("fingerprint mismatch", "fingerprint");
        std::string why;
        CHECK(!distrib::JobManifest::load(path, &why).has_value());
        // Diverged-build manifests must keep their own (digested)
        // study id, so the diagnostic can name the foreign build.
        CHECK(why.find("diverged") != std::string::npos);
    }
}

void
testResultRoundtripAndRefusals()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);

    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {config}, sc, length, 3);
    core::CheckpointStore store(kStore);
    distrib::ensureStudyStore(store, manifest);

    distrib::Runner runner(kQueue, kStore, runnerOpts("roundtrip", -1.0));
    const distrib::ShardResult produced =
        runner.execute(manifest, 0, 1);
    CHECK_EQ(produced.studyId, manifest.studyId);
    CHECK(!produced.slice.obs.empty());

    const std::string path =
        (fs::path(kQueue) / "result_roundtrip.smrr").string();
    std::string error;
    CHECK(produced.save(path, &error));
    const auto loaded =
        distrib::ShardResult::load(path, manifest, 0, 1, &error);
    CHECK(loaded.has_value());
    CHECK_EQ(error, std::string());
    {
        // Byte-level identity of the reloaded result.
        util::BinaryWriter a, b;
        produced.serialize(a);
        loaded->serialize(b);
        CHECK(a.buffer() == b.buffer());
    }

    const std::vector<std::uint8_t> good = readFileBytes(path);
    CHECK(good.size() > 64);

    auto expectRefusal = [&](const char *what, const char *needle) {
        std::string why;
        const auto result =
            distrib::ShardResult::load(path, manifest, 0, 1, &why);
        CHECK(!result.has_value());
        const bool mentions = why.find(needle) != std::string::npos;
        CHECK(mentions);
        if (!mentions)
            std::fprintf(stderr,
                         "  %s: diagnostic \"%s\" lacks \"%s\"\n",
                         what, why.c_str(), needle);
    };

    // Truncated file.
    writeFileBytes(path, std::vector<std::uint8_t>(
                             good.begin(),
                             good.begin() + good.size() / 2));
    expectRefusal("truncation", "checksum");

    // Single flipped payload byte.
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0x40;
        writeFileBytes(path, bad);
        expectRefusal("corruption", "checksum");
    }

    // Version bump, resealed.
    {
        std::vector<std::uint8_t> bad = good;
        bad[8] = 3;
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("version bump", "protocol version 3");
    }

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("magic", "not a smarts shard result");
    }

    // Trailing garbage behind a valid checksum.
    {
        std::vector<std::uint8_t> bad = good;
        bad.insert(bad.end() - 8, {0xde, 0xad, 0xbe, 0xef});
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("trailing garbage", "trailing garbage");
    }

    // Restore the pristine bytes; the semantic refusals below are
    // about the expectation, not the file.
    writeFileBytes(path, good);
    CHECK(distrib::ShardResult::load(path, manifest, 0, 1, &error)
              .has_value());

    // Wrong job: the file is (0, 1), the leader asked for (0, 2).
    {
        std::string why;
        CHECK(!distrib::ShardResult::load(path, manifest, 0, 2, &why)
                   .has_value());
        CHECK(why.find("shard 1") != std::string::npos);
    }

    // Wrong study: a manifest differing in any field refuses the
    // result outright (study ids are digests of every field).
    {
        core::SamplingConfig scOther = sc;
        scOther.interval = 17;
        const distrib::JobManifest other =
            distrib::planStudy(spec, {config}, scOther, length, 3);
        std::string why;
        CHECK(!distrib::ShardResult::load(path, other, 0, 1, &why)
                   .has_value());
        CHECK(why.find("study") != std::string::npos);
    }

    // Mis-keyed: right study id, wrong library key (geometry).
    {
        distrib::ShardResult bad = produced;
        bad.key.geometryHash ^= 1;
        CHECK(bad.save(path, &error));
        expectRefusal("key mismatch", "geometry");
    }

    // Shard-spec echo disagrees with the manifest plan.
    {
        distrib::ShardResult bad = produced;
        bad.shard.unitCount += 1;
        CHECK(bad.save(path, &error));
        expectRefusal("shard echo", "shard-spec echo");
    }

    // Internally inconsistent observation accounting.
    {
        distrib::ShardResult bad = produced;
        bad.slice.measured += 1;
        CHECK(bad.save(path, &error));
        expectRefusal("inconsistent payload", "inconsistent");
    }
}

void
testMergeBitIdentityAtRunnerCounts()
{
    // The tentpole contract: the leader's merged estimate equals
    // serial run() BYTE FOR BYTE at 1, 2 and 5 concurrent runners —
    // for every config of a multi-config study.
    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, cfg8);

    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {cfg8, cfg16}, sc, length, 5);
    core::CheckpointStore store(kStore);
    distrib::ensureStudyStore(store, manifest);
    // Re-ensuring an up-to-date store captures nothing.
    CHECK_EQ(distrib::ensureStudyStore(store, manifest),
             std::size_t(0));

    const core::SmartsEstimate serial8 = serialRun(spec, cfg8, sc);
    const core::SmartsEstimate serial16 = serialRun(spec, cfg16, sc);
    CHECK(serial8.units() > 0);

    for (const std::size_t runners :
         {std::size_t(1), std::size_t(2), std::size_t(5)}) {
        resetQueue(manifest);
        std::vector<std::thread> crew;
        std::vector<std::size_t> executed(runners, 0);
        for (std::size_t r = 0; r < runners; ++r)
            crew.emplace_back([&, r] {
                distrib::Runner runner(
                    kQueue, kStore,
                    runnerOpts("crew-" + std::to_string(r), -1.0));
                executed[r] = runner.drain(manifest);
            });
        for (std::thread &t : crew)
            t.join();

        std::size_t total = 0;
        for (const std::size_t n : executed)
            total += n;
        CHECK_EQ(total, manifest.jobCount());
        CHECK(distrib::studyComplete(kQueue, manifest));

        std::string error;
        const auto merged =
            distrib::mergeStudy(kQueue, manifest, &error);
        CHECK(merged.has_value());
        CHECK_EQ(merged->size(), std::size_t(2));
        CHECK(fingerprint((*merged)[0]) == fingerprint(serial8));
        CHECK(fingerprint((*merged)[1]) == fingerprint(serial16));
    }

    // collectStudy with a helping leader needs no runners at all.
    resetQueue(manifest);
    distrib::Runner helper(kQueue, kStore, runnerOpts("solo-leader", -1.0));
    std::string error;
    const auto collected = distrib::collectStudy(
        kQueue, manifest, /*timeoutSeconds=*/300.0, &helper, &error);
    CHECK(collected.has_value());
    CHECK(fingerprint((*collected)[0]) == fingerprint(serial8));

    // Republishing the IDENTICAL study preserves the completed
    // results (the deterministic study id is designed for restarted
    // leaders): the merge succeeds immediately, nothing re-runs.
    CHECK(distrib::publishStudy(kQueue, manifest, &error));
    CHECK(distrib::studyComplete(kQueue, manifest));
    const auto reused = distrib::collectStudy(
        kQueue, manifest, /*timeoutSeconds=*/5.0, nullptr, &error);
    CHECK(reused.has_value());
    CHECK(fingerprint((*reused)[0]) == fingerprint(serial8));

    // A DIFFERENT study (any field changed) resets the queue.
    {
        core::SamplingConfig scOther = sc;
        scOther.offset = 3;
        const distrib::JobManifest other = distrib::planStudy(
            spec, {cfg8, cfg16}, scOther, length, 5);
        CHECK(distrib::publishStudy(kQueue, other, &error));
        CHECK(!distrib::studyComplete(kQueue, other));
        CHECK(!fs::exists(distrib::resultPath(kQueue, 0, 0)));
    }
    resetQueue(manifest);
    CHECK(distrib::collectStudy(kQueue, manifest, 300.0, &helper,
                                &error)
              .has_value());

    // A missing shard result refuses the whole merge.
    std::error_code ec;
    fs::remove(distrib::resultPath(kQueue, 1, 2), ec);
    CHECK(!distrib::studyComplete(kQueue, manifest));
    CHECK(!distrib::mergeStudy(kQueue, manifest, &error).has_value());
    CHECK(!error.empty());
}

void
testClaimsDuplicatesAndRecovery()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("chase-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);

    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {config}, sc, length, 4);
    core::CheckpointStore store(kStore);
    distrib::ensureStudyStore(store, manifest);
    const core::SmartsEstimate serial = serialRun(spec, config, sc);

    // Claim exclusivity: of two claimants exactly one wins.
    resetQueue(manifest);
    CHECK(distrib::claimJob(kQueue, 0, 0, "first"));
    CHECK(!distrib::claimJob(kQueue, 0, 0, "second"));

    // Duplicate execution is benign: two runners that both execute
    // the same job publish BYTE-IDENTICAL result files (that is
    // what makes lost claim races and stale-claim stealing safe).
    {
        distrib::Runner a(kQueue, kStore, runnerOpts("dup-a", -1.0));
        distrib::Runner b(kQueue, kStore, runnerOpts("dup-b", -1.0));
        const distrib::ShardResult ra = a.execute(manifest, 0, 1);
        const distrib::ShardResult rb = b.execute(manifest, 0, 1);
        util::BinaryWriter wa, wb;
        ra.serialize(wa);
        rb.serialize(wb);
        CHECK(wa.buffer() == wb.buffer());

        std::string error;
        CHECK(distrib::publishResult(kQueue, ra, &error));
        const std::vector<std::uint8_t> first =
            readFileBytes(distrib::resultPath(kQueue, 0, 1));
        CHECK(distrib::publishResult(kQueue, rb, &error));
        CHECK(readFileBytes(distrib::resultPath(kQueue, 0, 1)) ==
              first);
    }

    // Abandoned-claim recovery: a crashed runner's claim (no
    // result behind it) blocks nothing once the stale window
    // passes.
    resetQueue(manifest);
    CHECK(distrib::claimJob(kQueue, 0, 2, "crashed-runner"));

    // A polite runner (no stealing) completes everything EXCEPT the
    // abandoned job, and the merge refuses the incomplete study.
    distrib::Runner polite(kQueue, kStore, runnerOpts("polite", -1.0));
    CHECK_EQ(polite.drain(manifest), manifest.jobCount() - 1);
    std::string error;
    CHECK(!distrib::mergeStudy(kQueue, manifest, &error).has_value());

    // A recovery runner with a zero stale window steals the
    // abandoned claim; now the study completes and merges
    // bit-identically to serial.
    distrib::Runner recovery(kQueue, kStore, runnerOpts("recovery", 0.0));
    CHECK_EQ(recovery.drain(manifest), std::size_t(1));
    const auto merged = distrib::mergeStudy(kQueue, manifest, &error);
    CHECK(merged.has_value());
    CHECK(fingerprint(merged->front()) == fingerprint(serial));

    // Poisoned-result recovery: a "complete" study with a corrupt
    // result file refuses a bare merge — and would refuse forever,
    // since claims treat an existing result as done. The leader's
    // collect loop must quarantine the file and get the job
    // re-executed rather than wedge.
    {
        const std::string victim = distrib::resultPath(kQueue, 0, 1);
        std::vector<std::uint8_t> bytes = readFileBytes(victim);
        bytes[bytes.size() / 2] ^= 0x08;
        writeFileBytes(victim, bytes);
        CHECK(distrib::studyComplete(kQueue, manifest));
        CHECK(!distrib::mergeStudy(kQueue, manifest, &error)
                   .has_value());

        distrib::Runner healer(kQueue, kStore, runnerOpts("healer", -1.0));
        const auto healed = distrib::collectStudy(
            kQueue, manifest, /*timeoutSeconds=*/300.0, &healer,
            &error);
        CHECK(healed.has_value());
        CHECK(fingerprint(healed->front()) == fingerprint(serial));
    }
}

void
testStorePlanMismatchFallback()
{
    // A store whose library was captured under a DIFFERENT shard
    // plan (e.g. an earlier in-process run with another shard
    // count) must not derail a runner: it recaptures with the
    // manifest's plan in memory and still produces bit-identical
    // results.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("stream-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);

    // Populate the store with a 7-shard plan...
    {
        exec::ThreadPool pool(2);
        core::CheckpointStore store(kStore);
        auto factory = [&spec, &config] {
            return std::make_unique<core::SimSession>(spec, config);
        };
        core::SystematicSampler(sc).runSharded(factory, spec, config,
                                               length, 7, pool,
                                               store);
    }

    // ...and run a 3-shard study against it WITHOUT the leader
    // re-shipping the store.
    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {config}, sc, length, 3);
    resetQueue(manifest);
    distrib::Runner runner(kQueue, kStore, runnerOpts("fallback", -1.0));
    CHECK_EQ(runner.drain(manifest), manifest.jobCount());

    std::string error;
    const auto merged = distrib::mergeStudy(kQueue, manifest, &error);
    CHECK(merged.has_value());
    CHECK(fingerprint(merged->front()) ==
          fingerprint(serialRun(spec, config, sc)));

    // ensureStudyStore, by contrast, RE-captures the key so shipped
    // stores always match the manifest plan.
    core::CheckpointStore store(kStore);
    CHECK_EQ(distrib::ensureStudyStore(store, manifest),
             std::size_t(1));
    CHECK_EQ(distrib::ensureStudyStore(store, manifest),
             std::size_t(0));

    // A REFUSED store file (corrupt in transit) is repaired by the
    // runner's fallback capture — without the repair every later
    // study for the key would pay the recapture again.
    {
        const std::string libPath =
            store.pathFor(manifest.keyFor(0));
        std::vector<std::uint8_t> bytes = readFileBytes(libPath);
        bytes[bytes.size() / 2] ^= 0x04;
        writeFileBytes(libPath, bytes);
        CHECK(!store.tryLoad(manifest.keyFor(0)).has_value());

        resetQueue(manifest);
        distrib::Runner repairer(kQueue, kStore, runnerOpts("repairer", -1.0));
        CHECK_EQ(repairer.drain(manifest), manifest.jobCount());
        CHECK(store.tryLoad(manifest.keyFor(0)).has_value());
        std::string error;
        const auto healed =
            distrib::mergeStudy(kQueue, manifest, &error);
        CHECK(healed.has_value());
        CHECK(fingerprint(healed->front()) ==
              fingerprint(serialRun(spec, config, sc)));
    }
}

void
testPollBackoff()
{
    // The wait loops' idle backoff: doubles per idle poll from the
    // seed to the ~1 s cap, and any progress resets it to the seed.
    distrib::PollBackoff backoff;
    CHECK_EQ(backoff.currentMs(), 100.0);
    CHECK_EQ(backoff.nextMs(), 100.0);
    CHECK_EQ(backoff.nextMs(), 200.0);
    CHECK_EQ(backoff.nextMs(), 400.0);
    CHECK_EQ(backoff.nextMs(), 800.0);
    CHECK_EQ(backoff.nextMs(), 1000.0); // capped, not 1600.
    CHECK_EQ(backoff.nextMs(), 1000.0); // stays at the cap.
    backoff.reset();
    CHECK_EQ(backoff.currentMs(), 100.0);

    // A custom seed (smarts_runner --poll-ms=) still caps at ~1 s.
    distrib::PollBackoff fast(25.0);
    CHECK_EQ(fast.nextMs(), 25.0);
    CHECK_EQ(fast.nextMs(), 50.0);
    CHECK_EQ(fast.nextMs(), 100.0);

    // Degenerate seeds never wedge the loop: non-positive seeds
    // clamp to 1 ms, and a cap below the seed collapses to it.
    distrib::PollBackoff clamped(0.0);
    CHECK_EQ(clamped.currentMs(), 1.0);
    distrib::PollBackoff flat(500.0, 100.0);
    CHECK_EQ(flat.nextMs(), 500.0);
    CHECK_EQ(flat.nextMs(), 500.0);

    // awaitManifest takes the poll seed as a parameter; a manifest
    // already on disk returns without sleeping even at a huge seed.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {config}, defaultSampling(),
                           streamLengthOf(spec, config), 2);
    resetQueue(manifest);
    distrib::Runner runner(kQueue, kStore, runnerOpts("poller", -1.0));
    std::string error;
    const auto found = runner.awaitManifest(
        /*waitSeconds=*/0.0, &error, /*pollMillis=*/60'000.0);
    CHECK(found.has_value());
    CHECK_EQ(found->studyId, manifest.studyId);
}

void
testClaimOrderPermutations()
{
    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, cfg8);
    const distrib::JobManifest manifest = distrib::planStudy(
        spec, {cfg8, uarch::MachineConfig::sixteenWay()}, sc, length,
        4);

    // A claim order is a PERMUTATION of the (config × shard) grid:
    // every job exactly once, nothing invented.
    const auto order = distrib::claimOrder(manifest, "runner-a");
    CHECK_EQ(order.size(), manifest.jobCount());
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen(
        order.begin(), order.end());
    CHECK_EQ(seen.size(), order.size());
    for (const auto &[c, s] : order) {
        CHECK(c < manifest.configs.size());
        CHECK(s < manifest.plan.size());
    }

    // Deterministic per (study, runner id)...
    CHECK(distrib::claimOrder(manifest, "runner-a") == order);

    // ...and decorrelated across runner ids: with 8 jobs, at least
    // one of a handful of other ids must probe in a different order
    // (all identical would defeat the point of per-runner shuffles).
    bool differs = false;
    for (int i = 0; i < 8 && !differs; ++i)
        differs = distrib::claimOrder(
                      manifest, "runner-b" + std::to_string(i)) !=
                  order;
    CHECK(differs);

    // Weight bias: a range 100× heavier than its peers should be
    // probed FIRST by the overwhelming majority of runners. The ids
    // are fixed, so this is a deterministic property of the shuffle,
    // not a flaky statistical one.
    const std::vector<distrib::UnitRange> ranges = {
        {0, 1}, {1, 1}, {2, 1}, {3, 100}};
    const distrib::JobManifest narrow =
        distrib::planStudy(spec, {cfg8}, sc, length, 4);
    int bigFirst = 0;
    for (int i = 0; i < 20; ++i) {
        const auto ro = distrib::claimOrder(
            narrow, ranges, "weigher-" + std::to_string(i));
        CHECK_EQ(ro.size(), ranges.size());
        if (ro.front().second.unitCount == 100)
            ++bigFirst;
    }
    CHECK(bigFirst >= 15);
}

void
testHeartbeatAndStealing()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const distrib::JobManifest manifest = distrib::planStudy(
        spec, {config}, sc, streamLengthOf(spec, config), 4);
    resetQueue(manifest);

    const std::string claim = distrib::claimPath(kQueue, 0, 0);
    auto ageClaim = [&] {
        fs::last_write_time(claim,
                            fs::file_time_type::clock::now() -
                                std::chrono::hours(2));
    };

    // A FRESH claim is never stolen, however aggressive the window.
    CHECK(distrib::claimJob(kQueue, 0, 0, "a"));
    CHECK(!distrib::claimJob(kQueue, 0, 0, "b", 3600.0));

    // Once the claim ages past the window unrefreshed, it steals.
    ageClaim();
    CHECK(distrib::claimJob(kQueue, 0, 0, "b", 3600.0));
    // The thief's claim is fresh again.
    CHECK(!distrib::claimJob(kQueue, 0, 0, "c", 3600.0));

    // The heartbeat is what separates LIVE long jobs from dead
    // ones: an aged claim its holder touchClaim()ed is fresh and
    // must NOT steal...
    ageClaim();
    CHECK(distrib::touchClaim(claim));
    CHECK(!distrib::claimJob(kQueue, 0, 0, "c", 3600.0));

    // ...while one never refreshed again does.
    ageClaim();
    CHECK(distrib::claimJob(kQueue, 0, 0, "c", 3600.0));
}

void
testAwaitManifestPollsThroughRefusals()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const distrib::JobManifest manifest =
        distrib::planStudy(spec, {config}, defaultSampling(),
                           streamLengthOf(spec, config), 2);

    // Plant an UNLOADABLE manifest: a leftover from an incompatible
    // build that the leader is about to replace.
    fs::remove_all(kQueue);
    fs::create_directories(kQueue);
    writeFileBytes(distrib::manifestPath(kQueue),
                   {'g', 'a', 'r', 'b', 'a', 'g', 'e'});

    distrib::Runner runner(kQueue, kStore, runnerOpts("waiter", -1.0));
    std::string error;

    // The refusal does NOT end the wait early; on timeout the error
    // surfaces the last refusal instead of claiming no manifest.
    CHECK(!runner.awaitManifest(0.0, &error, 10.0).has_value());
    CHECK(error.find("last refusal") != std::string::npos);

    // A leader replacing the garbage mid-wait is picked up by the
    // same polling loop.
    std::thread leader([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(150));
        std::string publishError;
        CHECK(distrib::publishStudy(kQueue, manifest,
                                    &publishError));
    });
    const auto found =
        runner.awaitManifest(/*waitSeconds=*/30.0, &error,
                             /*pollMillis=*/20.0);
    leader.join();
    CHECK(found.has_value());
    CHECK_EQ(found->studyId, manifest.studyId);
}

void
testUnitRangeStudy()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();

    core::CheckpointStore store(kStore);
    const distrib::LivePointPlan plan =
        distrib::ensureStudyLivePoints(store, spec, {config}, sc);
    CHECK(plan.totalUnits > 12);
    CHECK(plan.streamLength > 0);

    const distrib::JobManifest manifest = distrib::planUnitStudy(
        spec, {config}, sc, plan.streamLength, plan.totalUnits, 6);
    CHECK(manifest.mode == distrib::JobMode::UnitRange);
    CHECK_EQ(manifest.ranges.size(), std::size_t(6));
    CHECK_EQ(manifest.jobCount(), std::size_t(6));
    CHECK(manifest.plan.empty());
    {
        // The seed partition tiles [0, totalUnits) exactly.
        std::uint64_t cursor = 0;
        for (const distrib::UnitRange &r : manifest.ranges) {
            CHECK_EQ(r.firstUnit, cursor);
            cursor += r.unitCount;
        }
        CHECK_EQ(cursor, plan.totalUnits);
    }

    const core::SmartsEstimate serial = serialRun(spec, config, sc);

    // The manifest roundtrips (mode, totalUnits and ranges intact).
    resetQueue(manifest);
    {
        std::string error;
        const auto loaded = distrib::JobManifest::load(
            distrib::manifestPath(kQueue), &error);
        CHECK(loaded.has_value());
        CHECK(loaded->mode == distrib::JobMode::UnitRange);
        CHECK_EQ(loaded->totalUnits, plan.totalUnits);
        CHECK(loaded->ranges == manifest.ranges);
    }
    // publishStudy seeded the live partition markers.
    CHECK_EQ(distrib::listRanges(kQueue).size(),
             manifest.ranges.size());

    // One runner drains the whole study; the tiled merge is
    // bit-identical to serial run().
    for (const std::size_t runners :
         {std::size_t(1), std::size_t(2)}) {
        resetQueue(manifest);
        std::vector<std::thread> crew;
        std::vector<std::size_t> executed(runners, 0);
        for (std::size_t r = 0; r < runners; ++r)
            crew.emplace_back([&, r] {
                distrib::Runner runner(
                    kQueue, kStore,
                    runnerOpts("unit-crew-" + std::to_string(r), -1.0));
                executed[r] = runner.drain(manifest);
            });
        for (std::thread &t : crew)
            t.join();
        std::size_t total = 0;
        for (const std::size_t n : executed)
            total += n;
        CHECK_EQ(total, manifest.jobCount());
        CHECK(distrib::studyComplete(kQueue, manifest));
        std::string error;
        const auto merged =
            distrib::mergeStudy(kQueue, manifest, &error);
        CHECK(merged.has_value());
        CHECK(fingerprint(merged->front()) == fingerprint(serial));
    }

    // Splitting re-grains the live partition; the result
    // granularity changes but the tiled merge stays bit-identical.
    resetQueue(manifest);
    CHECK(distrib::splitRemainingRanges(kQueue, manifest, 1) > 0);
    CHECK(distrib::listRanges(kQueue).size() >
          manifest.ranges.size());
    {
        distrib::Runner runner(kQueue, kStore,
                               runnerOpts("post-split", -1.0));
        CHECK(runner.drain(manifest) > 0);
        CHECK(distrib::studyComplete(kQueue, manifest));
        std::string error;
        const auto merged =
            distrib::mergeStudy(kQueue, manifest, &error);
        CHECK(merged.has_value());
        CHECK(fingerprint(merged->front()) == fingerprint(serial));
    }

    // A claimed or completed range never splits.
    resetQueue(manifest);
    CHECK(distrib::claimRange(kQueue, 0, manifest.ranges[0],
                              "holder"));
    const std::size_t splits =
        distrib::splitRemainingRanges(kQueue, manifest, 1);
    CHECK(splits > 0);
    bool parentSurvives = false;
    for (const distrib::UnitRange &r : distrib::listRanges(kQueue))
        parentSurvives |= r == manifest.ranges[0];
    CHECK(parentSurvives);

    // OVERLAPPING results — a parent range published by a racing
    // claimant plus children published after a split — still tile
    // into the bit-identical estimate (largest-at-cursor wins).
    {
        distrib::Runner racer(kQueue, kStore, runnerOpts("racer", -1.0));
        const distrib::UnitRange parent = manifest.ranges[0];
        const auto parentResult =
            racer.executeRange(manifest, 0, parent);
        CHECK(parentResult.has_value());
        std::string error;
        CHECK(distrib::publishResult(kQueue, *parentResult,
                                     &error));
        const distrib::UnitRange childA{parent.firstUnit,
                                        parent.unitCount / 2};
        const distrib::UnitRange childB{
            parent.firstUnit + parent.unitCount / 2,
            parent.unitCount - parent.unitCount / 2};
        const auto ra = racer.executeRange(manifest, 0, childA);
        const auto rb = racer.executeRange(manifest, 0, childB);
        CHECK(ra.has_value() && rb.has_value());
        CHECK(distrib::publishResult(kQueue, *ra, &error));
        CHECK(distrib::publishResult(kQueue, *rb, &error));

        distrib::Runner rest(kQueue, kStore, runnerOpts("rest", 0.0));
        rest.drain(manifest);
        CHECK(distrib::studyComplete(kQueue, manifest));
        const auto merged =
            distrib::mergeStudy(kQueue, manifest, &error);
        CHECK(merged.has_value());
        CHECK(fingerprint(merged->front()) == fingerprint(serial));
    }
}

void
testChaosElasticity()
{
    // The chaos drill: one runner DIES mid-drain (cooperative
    // cancel between units — its partial job is abandoned, never
    // published), a second joins LATE with a tight steal window,
    // and the merged study must still be bit-identical to serial
    // with a bounded execution count per job.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();

    core::CheckpointStore store(kStore);
    const distrib::LivePointPlan plan =
        distrib::ensureStudyLivePoints(store, spec, {config}, sc);
    const distrib::JobManifest manifest = distrib::planUnitStudy(
        spec, {config}, sc, plan.streamLength, plan.totalUnits, 5);
    resetQueue(manifest);
    const core::SmartsEstimate serial = serialRun(spec, config, sc);

    std::mutex tallyMutex;
    std::map<std::string, int> tally;
    auto count = [&](const std::string &job) {
        std::lock_guard<std::mutex> lock(tallyMutex);
        ++tally[job];
    };

    // Runner A dies as its SECOND job starts: the cancel hook trips
    // after two onExecute calls, so job 2's claim is left behind
    // with no result — exactly what a crashed host looks like.
    std::atomic<int> started{0};
    distrib::RunnerOptions aOpt;
    aOpt.id = "chaos-a";
    aOpt.heartbeatSeconds = 0.0; // heartbeat every unit.
    aOpt.cancelled = [&] { return started.load() >= 2; };
    aOpt.onExecute = [&](const std::string &job) {
        ++started;
        count(job);
    };
    std::thread victim([&] {
        distrib::Runner a(kQueue, kStore, aOpt);
        a.drain(manifest);
    });
    victim.join();
    CHECK_EQ(started.load(), 2);
    CHECK(!distrib::studyComplete(kQueue, manifest));

    // Runner B joins late, steals the abandoned claim once it ages
    // past the (tight) window, and finishes the study.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    distrib::RunnerOptions bOpt;
    bOpt.id = "chaos-b";
    bOpt.staleClaimSeconds = 0.4;
    bOpt.onExecute = count;
    distrib::Runner b(kQueue, kStore, bOpt);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(300);
    while (!distrib::studyComplete(kQueue, manifest)) {
        CHECK(std::chrono::steady_clock::now() < deadline);
        b.drain(manifest);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
    }

    // Bounded duplication: the abandoned job ran at most twice
    // (once per claimant), every other job exactly once.
    int over = 0, twice = 0;
    for (const auto &[job, n] : tally) {
        if (n > 2)
            ++over;
        if (n == 2)
            ++twice;
    }
    CHECK_EQ(over, 0);
    CHECK(twice <= 1);

    std::string error;
    const auto merged =
        distrib::mergeStudy(kQueue, manifest, &error);
    CHECK(merged.has_value());
    CHECK(fingerprint(merged->front()) == fingerprint(serial));
}

} // namespace

int
main()
{
    fs::remove_all(kQueue);
    fs::remove_all(kStore);
    fs::create_directories(kQueue);
    fs::create_directories(kStore);

    testManifestRoundtripAndRefusals();
    testResultRoundtripAndRefusals();
    testMergeBitIdentityAtRunnerCounts();
    testClaimsDuplicatesAndRecovery();
    testStorePlanMismatchFallback();
    testPollBackoff();
    testClaimOrderPermutations();
    testHeartbeatAndStealing();
    testAwaitManifestPollsThroughRefusals();
    testUnitRangeStudy();
    testChaosElasticity();
    TEST_MAIN_SUMMARY();
}
