# Markdown link checker for the docs tier: every RELATIVE link in
# README.md, docs/*.md and the other top-level markdown files must
# point at a file that exists in the repo. Runs as the `docs_links`
# ctest and as the CI docs job — a doc that names a moved or deleted
# file fails the build instead of rotting.
#
# External links (http/https) and pure anchors (#...) are skipped:
# this is an offline existence check, not a crawler.
#
# Usage: cmake -DROOT=<repo root> -P check_links.cmake

cmake_minimum_required(VERSION 3.16)

if(NOT ROOT)
  message(FATAL_ERROR "check_links.cmake needs -DROOT=<repo root>")
endif()

# Authored docs only: PAPER.md / PAPERS.md / SNIPPETS.md are
# retrieved source material whose links point at artifacts that were
# never part of this repo.
file(GLOB docs_md "${ROOT}/docs/*.md")
set(md_files "${ROOT}/README.md" "${ROOT}/ROADMAP.md" ${docs_md})

set(broken 0)
set(checked 0)

foreach(md IN LISTS md_files)
  file(READ "${md}" contents)
  get_filename_component(md_dir "${md}" DIRECTORY)

  # Inline links: ](target). Consume the text match by match with a
  # SUBSTRING loop — MATCHALL would hand back a ;-list whose
  # bracket/paren-laden elements CMake's list splitting mangles.
  set(rest "${contents}")
  while(1)
    string(REGEX MATCH "\\]\\(([^()]+)\\)" link "${rest}")
    if(link STREQUAL "")
      break()
    endif()
    set(target "${CMAKE_MATCH_1}")
    string(FIND "${rest}" "${link}" at)
    string(LENGTH "${link}" linklen)
    math(EXPR after "${at} + ${linklen}")
    string(SUBSTRING "${rest}" ${after} -1 rest)

    # Strip a trailing anchor; skip externals and pure anchors.
    string(REGEX REPLACE "#.*$" "" target "${target}")
    if(target STREQUAL "" OR target MATCHES "^[a-z]+://" OR
       target MATCHES "^mailto:")
      continue()
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS "${md_dir}/${target}")
      math(EXPR broken "${broken} + 1")
      message(SEND_ERROR
        "broken link in ${md}: (${target}) does not exist")
    endif()
  endwhile()
endforeach()

if(broken)
  message(FATAL_ERROR
    "${broken} broken markdown link(s) out of ${checked} checked")
endif()
message(STATUS
  "docs links OK: ${checked} relative link(s) all resolve")
