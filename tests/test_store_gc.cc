/**
 * @file
 * The CheckpointStore cache-service tier (docs/store-service.md):
 * budget-driven LRU eviction against a SCRIPTED logical-atime
 * sequence, pin/lease exclusivity and GC veto, the op counters that
 * make cache behavior assertable (one stat per cold lookup, zero on
 * warm; memoized directory creation), journal crash-recovery
 * (truncated or corrupted store-index → directory-scan rebuild that
 * CONVERGES: next open is clean), and — the reason this suite runs
 * under TSan/ASan in CI — N reader threads racing saves, GC and
 * pinning with ZERO torn loads: every lookup is either a validated
 * library or a clean miss, never a refusal.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "core/store_index.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"

using namespace smarts;
namespace fs = std::filesystem;

namespace {

const char *kRoot = "test_store_gc_root";

core::SamplingConfig
defaultSampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    // A sparse design keeps the shared library small: this suite
    // exercises bytes-and-keys store mechanics (and runs under
    // TSan in CI), not estimator quality.
    sc.interval = 25;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

/** One small real library, captured once and reused by every test:
 *  the GC/index machinery only cares about bytes and keys. */
const core::LivePointLibrary &
sharedLibrary()
{
    static const core::LivePointLibrary library = [] {
        const auto spec = workloads::findBenchmark(
            "sort-1", workloads::Scale::Mini);
        core::SimSession session(
            spec, uarch::MachineConfig::eightWay());
        return core::LivePointLibrary::build(session,
                                             defaultSampling());
    }();
    return library;
}

/** Key variant @p ordinal: same benchmark and sampling design,
 *  distinct geometry hash — distinct store entries whose files are
 *  byte-for-byte the same SIZE (uniform LRU arithmetic). */
core::LibraryKey
keyVariant(std::uint64_t ordinal)
{
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    core::LibraryKey key;
    key.benchmark = spec;
    key.sampling = defaultSampling();
    key.geometryHash = 0xfeed0000 + ordinal;
    return key;
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** The rel-paths of @p store's index in LRU (oldest-first) order,
 *  read back from the journal ON DISK — asserting the persisted
 *  access order, not just the in-memory one. */
std::vector<std::string>
journaledLruOrder(const core::CheckpointStore &store)
{
    std::string error;
    const auto index = core::StoreIndex::load(store.indexPath(),
                                              &error);
    CHECK(index.has_value());
    CHECK_EQ(error, std::string());
    std::vector<std::string> rels;
    if (index)
        for (const auto &[rel, entry] : index->lruOrder())
            rels.push_back(rel);
    return rels;
}

std::string
relOf(const core::CheckpointStore &store, const core::LibraryKey &key)
{
    const std::string path = store.livePointPathFor(key);
    return path.substr(store.root().size() + 1);
}

void
testCountersSingleStatAndMemoizedDirs()
{
    const std::string root = std::string(kRoot) + "/counters";
    core::CheckpointStore store(root);
    const core::LibraryKey k0 = keyVariant(0);
    const core::LibraryKey k1 = keyVariant(1);

    // Cold lookup on a fresh store: exactly ONE disk probe, a
    // silent miss, nothing else.
    std::string error;
    CHECK(!store.tryLoadLivePoints(k0, &error).has_value());
    CHECK_EQ(error, std::string());
    core::StoreCounters c = store.counters();
    CHECK_EQ(c.misses, std::uint64_t(1));
    CHECK_EQ(c.statCalls, std::uint64_t(1));
    CHECK_EQ(c.hits, std::uint64_t(0));

    // First publish creates the benchmark directory ONCE...
    CHECK(store.saveLivePoints(sharedLibrary(), k0, &error));
    c = store.counters();
    CHECK_EQ(c.saves, std::uint64_t(1));
    CHECK_EQ(c.dirEnsures, std::uint64_t(1));

    // ...and a second key in the same directory reuses the memo.
    CHECK(store.saveLivePoints(sharedLibrary(), k1, &error));
    c = store.counters();
    CHECK_EQ(c.saves, std::uint64_t(2));
    CHECK_EQ(c.dirEnsures, std::uint64_t(1));

    // Warm lookups are index-served: ZERO additional stat calls.
    CHECK(store.tryLoadLivePoints(k0, &error).has_value());
    CHECK(store.tryLoadLivePoints(k1, &error).has_value());
    c = store.counters();
    CHECK_EQ(c.statCalls, std::uint64_t(1));
    CHECK_EQ(c.hits, std::uint64_t(2));
    CHECK_EQ(c.touches, std::uint64_t(2));

    // A SECOND process (fresh instance, same root) inherits the
    // journal: its warm lookup needs no probe either.
    core::CheckpointStore reopened(root);
    CHECK(reopened.tryLoadLivePoints(k0, &error).has_value());
    c = reopened.counters();
    CHECK_EQ(c.statCalls, std::uint64_t(0));
    CHECK_EQ(c.hits, std::uint64_t(1));
    CHECK_EQ(c.rebuilds, std::uint64_t(0));

    // An entry published BEHIND the index (external writer): one
    // probe finds it, installs it, and the next lookup is free.
    const core::LibraryKey k2 = keyVariant(2);
    CHECK(sharedLibrary().save(k2, store.livePointPathFor(k2),
                               &error));
    CHECK(reopened.tryLoadLivePoints(k2, &error).has_value());
    CHECK(reopened.tryLoadLivePoints(k2, &error).has_value());
    c = reopened.counters();
    CHECK_EQ(c.statCalls, std::uint64_t(1));
    CHECK_EQ(c.hits, std::uint64_t(3));
}

void
testScriptedLruOrderAndBudgetedGc()
{
    const std::string root = std::string(kRoot) + "/lru";
    std::string error;

    // Populate five uniform-size entries through an unbounded store.
    {
        core::CheckpointStore store(root);
        for (std::uint64_t i = 0; i < 5; ++i)
            CHECK(store.saveLivePoints(sharedLibrary(),
                                       keyVariant(i), &error));
    }

    std::error_code ec;
    const std::uint64_t size = fs::file_size(
        core::CheckpointStore(root).livePointPathFor(keyVariant(0)),
        ec);
    CHECK(size > 0);

    // Reopen with a budget that fits exactly two entries and SCRIPT
    // the access sequence: the logical clock makes LRU a pure
    // function of it, no wall time anywhere.
    core::StoreOptions options;
    options.budgetBytes = 2 * size + size / 2;
    core::CheckpointStore store(root, options);
    CHECK(store.touch(keyVariant(0), true) > 0); // 0 → recently used
    CHECK(store.touch(keyVariant(2), true) > 0); // 2 → most recent

    // The journal must already spell the scripted order:
    // 1, 3, 4 (save order), then the touched 0, then 2.
    const std::vector<std::string> before = journaledLruOrder(store);
    CHECK_EQ(before.size(), std::size_t(5));
    if (before.size() == 5) {
        CHECK_EQ(before[0], relOf(store, keyVariant(1)));
        CHECK_EQ(before[1], relOf(store, keyVariant(3)));
        CHECK_EQ(before[2], relOf(store, keyVariant(4)));
        CHECK_EQ(before[3], relOf(store, keyVariant(0)));
        CHECK_EQ(before[4], relOf(store, keyVariant(2)));
    }

    // GC evicts exactly the three least-recently-used entries and
    // lands within budget.
    CHECK_EQ(store.gc(&error), std::size_t(3));
    CHECK_EQ(error, std::string());
    CHECK(store.totalBytes() <= options.budgetBytes);
    CHECK_EQ(store.totalBytes(), 2 * size);
    const core::StoreCounters c = store.counters();
    CHECK_EQ(c.evictions, std::uint64_t(3));
    CHECK_EQ(c.bytesEvicted, 3 * size);
    CHECK(c.gcRuns >= 1);

    CHECK(!fs::exists(store.livePointPathFor(keyVariant(1)), ec));
    CHECK(!fs::exists(store.livePointPathFor(keyVariant(3)), ec));
    CHECK(!fs::exists(store.livePointPathFor(keyVariant(4)), ec));
    CHECK(fs::exists(store.livePointPathFor(keyVariant(0)), ec));
    CHECK(fs::exists(store.livePointPathFor(keyVariant(2)), ec));

    // Survivors still LOAD (eviction never tears what it keeps),
    // and the evicted key is a clean miss, not a refusal.
    CHECK(store.tryLoadLivePoints(keyVariant(0), &error).has_value());
    CHECK(!store.tryLoadLivePoints(keyVariant(1), &error)
               .has_value());
    CHECK_EQ(error, std::string());

    const std::vector<std::string> after = journaledLruOrder(store);
    CHECK_EQ(after.size(), std::size_t(2));
}

void
testPinLeaseExclusivityAndGcVeto()
{
    const std::string root = std::string(kRoot) + "/pins";
    std::string error;

    std::uint64_t size = 0;
    {
        core::CheckpointStore store(root);
        CHECK(store.saveLivePoints(sharedLibrary(), keyVariant(0),
                                   &error));
        std::error_code ec;
        size = fs::file_size(
            store.livePointPathFor(keyVariant(0)), ec);

        // One pin per (entry, owner): the second claim with the
        // SAME owner is refused while the lease lives...
        auto lease = store.pin(keyVariant(0), true, "owner-a");
        CHECK(lease.has_value());
        CHECK(!store.pin(keyVariant(0), true, "owner-a")
                   .has_value());
        // ...while a DIFFERENT owner shares the entry fine.
        auto other = store.pin(keyVariant(0), true, "owner-b");
        CHECK(other.has_value());

        // Release → the same owner can pin again.
        lease->release();
        CHECK(store.pin(keyVariant(0), true, "owner-a").has_value());

        // Pinning a key with no entry protects nothing.
        CHECK(!store.pin(keyVariant(7), true, "owner-a")
                   .has_value());
    }
    // All leases above died with their scope: markers are gone.

    // A held pin VETOES eviction of the LRU victim; GC falls through
    // to the next victim and still meets the budget.
    core::StoreOptions options;
    options.budgetBytes = 2 * size + size / 2;
    core::CheckpointStore store(root, options);
    CHECK(store.saveLivePoints(sharedLibrary(), keyVariant(1),
                               &error));
    {
        auto lease = store.pin(keyVariant(0), true, "holder");
        CHECK(lease.has_value());
        // Key 2's save pushes the store over budget; key 0 is LRU
        // but pinned, so key 1 is evicted instead.
        CHECK(store.saveLivePoints(sharedLibrary(), keyVariant(2),
                                   &error));
        std::error_code ec;
        CHECK(fs::exists(store.livePointPathFor(keyVariant(0)), ec));
        CHECK(
            !fs::exists(store.livePointPathFor(keyVariant(1)), ec));
        const core::StoreCounters c = store.counters();
        CHECK(c.pinSkips >= 1);
        CHECK_EQ(c.evictions, std::uint64_t(1));
    }

    // Lease released: the once-protected entry is evictable again.
    CHECK(store.saveLivePoints(sharedLibrary(), keyVariant(3),
                               &error));
    std::error_code ec;
    CHECK(!fs::exists(store.livePointPathFor(keyVariant(0)), ec));
    CHECK(store.totalBytes() <= options.budgetBytes);
}

void
testJournalCrashRecovery()
{
    const std::string root = std::string(kRoot) + "/crash";
    std::string error;
    {
        core::CheckpointStore store(root);
        for (std::uint64_t i = 0; i < 3; ++i)
            CHECK(store.saveLivePoints(sharedLibrary(),
                                       keyVariant(i), &error));
        CHECK(store.touch(keyVariant(0), true) > 0);
    }
    const std::string indexPath =
        core::CheckpointStore(root).indexPath();
    const std::vector<std::uint8_t> good = readFileBytes(indexPath);
    CHECK(good.size() > 16);

    auto expectRecovery = [&](const char *what) {
        core::CheckpointStore store(root);
        // The refused journal is rebuilt from a directory scan —
        // every entry is found again, sizes are exact, and lookups
        // work immediately.
        CHECK(store.tryLoadLivePoints(keyVariant(1), &error)
                  .has_value());
        const core::StoreCounters c = store.counters();
        CHECK_EQ(c.rebuilds, std::uint64_t(1));
        const std::uint64_t expectBytes =
            3 * fs::file_size(
                    store.livePointPathFor(keyVariant(0)));
        CHECK_EQ(store.totalBytes(), expectBytes);
        CHECK_EQ(journaledLruOrder(store).size(), std::size_t(3));
        if (core::StoreIndex::load(indexPath, &error)) {
            // Converged: the rebuild republished a clean snapshot,
            // so the NEXT open pays nothing.
            core::CheckpointStore next(root);
            CHECK(next.tryLoadLivePoints(keyVariant(2), &error)
                      .has_value());
            CHECK_EQ(next.counters().rebuilds, std::uint64_t(0));
        } else {
            CHECK(false);
            std::fprintf(stderr,
                         "  %s: snapshot after rebuild refuses: "
                         "%s\n",
                         what, error.c_str());
        }
    };

    // Crash mid-append: the journal ends in a torn record.
    writeFileBytes(indexPath,
                   std::vector<std::uint8_t>(
                       good.begin(), good.end() - 5));
    expectRecovery("truncated journal");

    // Bit rot inside a committed record: the per-record checksum
    // refuses the WHOLE journal (no partial trust), then rebuilds.
    {
        std::vector<std::uint8_t> bad = good;
        bad[16 + (bad.size() - 16) / 2] ^= 0x20;
        writeFileBytes(indexPath, bad);
        expectRecovery("corrupted journal");
    }

    // Journal deleted outright (fresh clone of a populated store):
    // same convergence.
    {
        std::error_code ec;
        fs::remove(indexPath, ec);
        expectRecovery("missing journal");
    }
}

void
testConcurrentReadersUnderGc()
{
    const std::string root = std::string(kRoot) + "/race";
    std::string error;

    // Seed one entry to size the budget.
    core::StoreOptions options;
    {
        core::CheckpointStore seed(root);
        CHECK(seed.saveLivePoints(sharedLibrary(), keyVariant(0),
                                  &error));
        std::error_code ec;
        const std::uint64_t size = fs::file_size(
            seed.livePointPathFor(keyVariant(0)), ec);
        options.budgetBytes = 2 * size + size / 2;
    }

    // One store instance, shared: a writer cycling saves over six
    // keys (every save triggers GC at this budget — constant
    // eviction), a pinner claiming and releasing leases, and four
    // readers hammering lookups. The contract under test: NO TORN
    // LOADS — every lookup is a fully validated library or a clean
    // miss; a refusal (diagnostic set) means a reader saw a
    // half-dead file.
    core::CheckpointStore store(root, options);
    constexpr int kKeys = 6;
    constexpr int kWriterIters = 24;
    const std::size_t expectUnits = sharedLibrary().unitCount();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> tornLoads{0};
    std::atomic<std::uint64_t> badLibraries{0};
    std::atomic<std::uint64_t> cleanHits{0};
    std::atomic<std::uint64_t> cleanMisses{0};
    std::atomic<std::uint64_t> saveFailures{0};

    std::thread writer([&] {
        std::string err;
        for (int i = 0; i < kWriterIters; ++i)
            if (!store.saveLivePoints(sharedLibrary(),
                                      keyVariant(i % kKeys), &err))
                saveFailures.fetch_add(1);
        done.store(true);
    });

    std::thread pinner([&] {
        for (int i = 0; !done.load(); ++i) {
            auto lease =
                store.pin(keyVariant(i % kKeys), true, "pinner");
            std::this_thread::yield();
            // lease releases at scope exit; GC may have been vetoed
            // meanwhile — that is the point.
        }
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r)
        readers.emplace_back([&, r] {
            std::string err;
            for (int i = 0; !done.load(); ++i) {
                const auto library = store.tryLoadLivePoints(
                    keyVariant((r + i) % kKeys), &err);
                if (library) {
                    cleanHits.fetch_add(1);
                    if (library->unitCount() != expectUnits)
                        badLibraries.fetch_add(1);
                } else if (err.empty()) {
                    cleanMisses.fetch_add(1);
                } else {
                    tornLoads.fetch_add(1);
                    std::fprintf(stderr, "  torn load: %s\n",
                                 err.c_str());
                }
            }
        });

    writer.join();
    pinner.join();
    for (std::thread &t : readers)
        t.join();

    CHECK_EQ(tornLoads.load(), std::uint64_t(0));
    CHECK_EQ(badLibraries.load(), std::uint64_t(0));
    CHECK_EQ(saveFailures.load(), std::uint64_t(0));
    CHECK(cleanHits.load() + cleanMisses.load() > 0);
    CHECK_EQ(store.counters().refusals, std::uint64_t(0));

    // The dust settles within budget (nothing pinned anymore — the
    // last save's GC pass may have been vetoed by a live pin, so
    // this sweep may still evict), and every surviving entry
    // validates.
    store.gc(&error);
    CHECK_EQ(error, std::string());
    CHECK(store.totalBytes() <= options.budgetBytes);
    std::size_t survivors = 0;
    for (int i = 0; i < kKeys; ++i)
        if (store.tryLoadLivePoints(keyVariant(i), &error))
            ++survivors;
    CHECK(survivors >= 1);
    CHECK_EQ(store.counters().refusals, std::uint64_t(0));
}

} // namespace

int
main()
{
    fs::remove_all(kRoot);
    fs::create_directories(kRoot);

    testCountersSingleStatAndMemoizedDirs();
    testScriptedLruOrderAndBudgetedGc();
    testPinLeaseExclusivityAndGcVeto();
    testJournalCrashRecovery();
    testConcurrentReadersUnderGc();
    TEST_MAIN_SUMMARY();
}
