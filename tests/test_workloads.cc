/**
 * @file
 * Unit tests for the synthetic workload layer: suite composition,
 * lookup, determinism of the generated streams, and the scale
 * ladder.
 */

#include <set>

#include "core/session.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"
#include "workloads/program.hh"

#include "check.hh"

using namespace smarts;

namespace {

void
testSuites()
{
    const auto quick = workloads::quickSuite(workloads::Scale::Mini);
    const auto standard =
        workloads::standardSuite(workloads::Scale::Mini);
    CHECK(quick.size() == 6);
    CHECK(standard.size() == 12);

    std::set<std::string> names;
    for (const auto &spec : standard)
        names.insert(spec.name);
    CHECK(names.size() == standard.size()); // unique names.
    // The names the examples/benches reference must exist.
    for (const char *needed : {"phase-1", "fsm-2", "sort-2",
                               "bsearch-2", "alu-1", "chase-1"})
        CHECK(names.count(needed) == 1);
    // quick is a subset of standard.
    for (const auto &spec : quick)
        CHECK(names.count(spec.name) == 1);
}

void
testFindBenchmark()
{
    const auto spec =
        workloads::findBenchmark("bsearch-2", workloads::Scale::Small);
    CHECK(spec.name == "bsearch-2");
    CHECK(spec.scale == workloads::Scale::Small);
}

void
testProgramsWellFormed()
{
    for (const auto &spec :
         workloads::standardSuite(workloads::Scale::Mini)) {
        const workloads::Program prog =
            workloads::buildProgram(spec);
        CHECK(!prog.code.empty());
        CHECK(prog.dataBytes > 0);
        CHECK((prog.dataBytes & (prog.dataBytes - 1)) == 0);
        CHECK(prog.data.size() == prog.dataBytes / 4);
        CHECK(prog.entryPc == workloads::kCodeBase);
        // Identical spec -> identical program (determinism).
        const workloads::Program again =
            workloads::buildProgram(spec);
        CHECK(again.code == prog.code);
        CHECK(again.data == prog.data);
    }
}

void
testStreamsRunAndScale()
{
    const auto config = uarch::MachineConfig::eightWay();
    for (const char *name : {"alu-1", "fsm-1", "sort-1"}) {
        const auto mini =
            workloads::findBenchmark(name, workloads::Scale::Mini);
        core::SimSession a(mini, config);
        const std::uint64_t lenA =
            a.fastForward(~0ull >> 1, core::WarmingMode::None);
        CHECK(a.finished());
        CHECK(lenA > 500'000);
        CHECK(lenA < 8'000'000);

        // Deterministic replay.
        core::SimSession b(mini, config);
        CHECK(b.fastForward(~0ull >> 1, core::WarmingMode::None) ==
              lenA);

        // Small is roughly 6x Mini.
        const auto small =
            workloads::findBenchmark(name, workloads::Scale::Small);
        core::SimSession c(small, config);
        const std::uint64_t lenC =
            c.fastForward(~0ull >> 1, core::WarmingMode::None);
        CHECK(lenC > 3 * lenA);
    }
}

void
testWarmingModesPreserveArchitecture()
{
    // The architectural stream must be identical no matter what is
    // being warmed or timed: same length, same final activity mix.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("mix-1", workloads::Scale::Mini);

    std::uint64_t lengths[3];
    std::uint64_t loads[3];
    int i = 0;
    for (const auto mode :
         {core::WarmingMode::None, core::WarmingMode::Functional,
          core::WarmingMode::CachesOnly}) {
        core::SimSession s(spec, config);
        lengths[i] = s.fastForward(~0ull >> 1, mode);
        loads[i] = s.activity().loads;
        ++i;
    }
    CHECK(lengths[0] == lengths[1]);
    CHECK(lengths[1] == lengths[2]);
    CHECK(loads[0] == loads[1]);

    // Detailed execution follows the same architectural path.
    core::SimSession d(spec, config);
    std::uint64_t detailedLen = 0;
    while (!d.finished()) {
        const core::Segment seg = d.detailedRun(1'000'000);
        detailedLen += seg.instructions;
        if (!seg.instructions)
            break;
    }
    CHECK(detailedLen == lengths[0]);
}

} // namespace

int
main()
{
    testSuites();
    testFindBenchmark();
    testProgramsWellFormed();
    testStreamsRunAndScale();
    testWarmingModesPreserveArchitecture();
    TEST_MAIN_SUMMARY();
}
