/**
 * @file
 * Unit tests for the systematic sampling-unit geometry: k = N/U
 * interval selection, first-unit offset j, the W pre-warming
 * window, and full-stream coverage invariants.
 */

#include "core/sampler.hh"
#include "core/session.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"

using namespace smarts;

namespace {

std::uint64_t
streamLengthOf(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config)
{
    core::SimSession session(spec, config);
    return session.fastForward(~0ull >> 1, core::WarmingMode::None);
}

void
testChooseInterval()
{
    using core::SamplingConfig;
    // 1e6 insts / U=1000 -> N=1000 units; 100 target -> k=10.
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 100) == 10);
    // Target above the population: sample every unit.
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 2000) == 1);
    CHECK(SamplingConfig::chooseInterval(0, 1000, 10) == 1);
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 0) == 1);
    // Rounding down k keeps n >= target.
    const std::uint64_t k =
        SamplingConfig::chooseInterval(1'234'567, 1000, 60);
    CHECK(k >= 1);
    CHECK(1'234'567 / 1000 / k >= 60);
}

void
testUnitGeometry()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);
    const std::uint64_t length = streamLengthOf(spec, config);
    CHECK(length > 500'000); // sanity: a real stream.

    const std::uint64_t u = 1000, w = 500, k = 10;
    for (const std::uint64_t offset : {0ull, 3ull, 7ull}) {
        core::SamplingConfig sc;
        sc.unitSize = u;
        sc.detailedWarming = w;
        sc.interval = k;
        sc.offset = offset;
        sc.warming = core::WarmingMode::Functional;

        core::SimSession session(spec, config);
        const core::SmartsEstimate est =
            core::SystematicSampler(sc).run(session);

        // Expected units: indices offset, offset+k, ... whose full
        // U instructions fit inside the stream.
        std::uint64_t expected = 0;
        for (std::uint64_t idx = offset; idx * u + u <= length;
             idx += k)
            ++expected;
        CHECK(est.units() == expected);

        // Every complete unit contributes exactly U measured
        // instructions; at most one trailing partial unit adds less.
        CHECK(est.instructionsMeasured >= est.units() * u);
        CHECK(est.instructionsMeasured < est.units() * u + u);

        // W pre-warming window: every unit is preceded by exactly W
        // detailed-warmed instructions (offset*U >= W here), except
        // a possible truncated final warming window.
        CHECK(est.instructionsWarmed >= (est.units() - 1) * w);
        CHECK(est.instructionsWarmed <= est.units() * w + w);

        // The sampler runs the stream to completion.
        CHECK(session.finished());
        CHECK(est.streamLength == length);
        CHECK(est.detailedFraction() > 0.0);
        CHECK(est.detailedFraction() < 1.0);

        CHECK(est.cpi() > 0.0);
        CHECK(est.epi() > 0.0);
    }
}

void
testFirstUnitOffsetZeroWarming()
{
    // offset 0, first unit starts at instruction 0: the warming
    // window is truncated to nothing, and the run still works.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);

    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 50;
    sc.offset = 0;
    sc.warming = core::WarmingMode::None;

    core::SimSession session(spec, config);
    const core::SmartsEstimate est =
        core::SystematicSampler(sc).run(session);
    CHECK(est.units() > 0);
    // First unit got no warming; every other counted unit got
    // exactly W. A trailing dropped partial unit may have spent one
    // extra full warming window, so the budget is between
    // (units-1)*W and units*W.
    CHECK(est.instructionsWarmed >= (est.units() - 1) * 2000);
    CHECK(est.instructionsWarmed <= est.units() * 2000);
    CHECK(est.instructionsWarmed % 2000 == 0);
}

void
testDenserIntervalMeasuresMore()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);

    auto unitsAt = [&](std::uint64_t k) {
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 0;
        sc.interval = k;
        sc.warming = core::WarmingMode::Functional;
        core::SimSession session(spec, config);
        return core::SystematicSampler(sc).run(session).units();
    };
    const std::uint64_t dense = unitsAt(5);
    const std::uint64_t sparse = unitsAt(50);
    CHECK(dense > 8 * sparse); // ~10x by construction.
}

} // namespace

int
main()
{
    testChooseInterval();
    testUnitGeometry();
    testFirstUnitOffsetZeroWarming();
    testDenserIntervalMeasuresMore();
    TEST_MAIN_SUMMARY();
}
