/**
 * @file
 * Unit tests for the systematic sampling-unit geometry: k = N/U
 * interval selection, first-unit offset j, the W pre-warming
 * window, and full-stream coverage invariants.
 */

#include "core/sampler.hh"
#include "core/session.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"

using namespace smarts;

namespace {

std::uint64_t
streamLengthOf(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config)
{
    core::SimSession session(spec, config);
    return session.fastForward(~0ull >> 1, core::WarmingMode::None);
}

void
testChooseInterval()
{
    using core::SamplingConfig;
    // 1e6 insts / U=1000 -> N=1000 units; 100 target -> k=10.
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 100) == 10);
    // Target above the population: sample every unit.
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 2000) == 1);
    CHECK(SamplingConfig::chooseInterval(0, 1000, 10) == 1);
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 0) == 1);

    // Round to NEAREST: truncation used to map units=1999,
    // target=1000 to k=1 and measure ~2x the requested units.
    CHECK(SamplingConfig::chooseInterval(1'999'000, 1000, 1000) == 2);
    // Boundary cases around the half-way point.
    CHECK(SamplingConfig::chooseInterval(1'499'000, 1000, 1000) == 1);
    CHECK(SamplingConfig::chooseInterval(1'500'000, 1000, 1000) == 2);
    CHECK(SamplingConfig::chooseInterval(2'500'000, 1000, 1000) == 3);
    CHECK(SamplingConfig::chooseInterval(2'499'000, 1000, 1000) == 2);
    // Exactly at the target and one past it.
    CHECK(SamplingConfig::chooseInterval(1'000'000, 1000, 1000) == 1);
    CHECK(SamplingConfig::chooseInterval(1'001'000, 1000, 1000) == 1);
    // Never below 1 even for enormous targets on small populations.
    CHECK(SamplingConfig::chooseInterval(10'000, 1000, 9) == 1);

    // The measured unit count now brackets the target from both
    // sides instead of always overshooting.
    const std::uint64_t k =
        SamplingConfig::chooseInterval(1'234'567, 1000, 60);
    CHECK(k == 21); // 1234 units / 60 = 20.57 -> nearest is 21.
    const std::uint64_t measured = 1'234'567 / 1000 / k;
    CHECK(measured >= 55 && measured <= 65);
}

void
testNextGridIndex()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.interval = 7;
    sc.offset = 3;
    // Already at or ahead of pos: unchanged.
    CHECK(sc.nextGridIndex(3, 0) == 3);
    CHECK(sc.nextGridIndex(3, 3000) == 3);
    // Mid-unit positions round up to the next whole unit, then to
    // the next index on the grid.
    CHECK(sc.nextGridIndex(3, 3001) == 10);
    CHECK(sc.nextGridIndex(3, 10'000) == 10);
    CHECK(sc.nextGridIndex(3, 10'001) == 17);
    // Large jumps are O(1), not a loop (this would hang otherwise).
    CHECK(sc.nextGridIndex(3, 700'000'000'000'000ull) ==
          3 + ((700'000'000'000ull - 3 + 6) / 7) * 7);
}

void
testUnitGeometry()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);
    const std::uint64_t length = streamLengthOf(spec, config);
    CHECK(length > 500'000); // sanity: a real stream.

    const std::uint64_t u = 1000, w = 500, k = 10;
    for (const std::uint64_t offset : {0ull, 3ull, 7ull}) {
        core::SamplingConfig sc;
        sc.unitSize = u;
        sc.detailedWarming = w;
        sc.interval = k;
        sc.offset = offset;
        sc.warming = core::WarmingMode::Functional;

        core::SimSession session(spec, config);
        const core::SmartsEstimate est =
            core::SystematicSampler(sc).run(session);

        // Expected units: indices offset, offset+k, ... whose full
        // U instructions fit inside the stream.
        std::uint64_t expected = 0;
        for (std::uint64_t idx = offset; idx * u + u <= length;
             idx += k)
            ++expected;
        CHECK(est.units() == expected);

        // Every complete unit contributes exactly U measured
        // instructions; a trailing partial unit is tracked as
        // dropped, never as measured.
        CHECK(est.instructionsMeasured == est.units() * u);
        CHECK(est.instructionsDropped < u);

        // W pre-warming window: every unit is preceded by exactly W
        // detailed-warmed instructions (offset*U >= W here), except
        // a possible truncated final warming window.
        CHECK(est.instructionsWarmed >= (est.units() - 1) * w);
        CHECK(est.instructionsWarmed <= est.units() * w + w);

        // The sampler runs the stream to completion.
        CHECK(session.finished());
        CHECK(est.streamLength == length);
        CHECK(est.detailedFraction() > 0.0);
        CHECK(est.detailedFraction() < 1.0);

        CHECK(est.cpi() > 0.0);
        CHECK(est.epi() > 0.0);
    }
}

void
testFirstUnitOffsetZeroWarming()
{
    // offset 0, first unit starts at instruction 0: the warming
    // window is truncated to nothing, and the run still works.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);

    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 50;
    sc.offset = 0;
    sc.warming = core::WarmingMode::None;

    core::SimSession session(spec, config);
    const core::SmartsEstimate est =
        core::SystematicSampler(sc).run(session);
    CHECK(est.units() > 0);
    // First unit got no warming; every other counted unit got
    // exactly W. A trailing dropped partial unit may have spent one
    // extra full warming window, so the budget is between
    // (units-1)*W and units*W.
    CHECK(est.instructionsWarmed >= (est.units() - 1) * 2000);
    CHECK(est.instructionsWarmed <= est.units() * 2000);
    CHECK(est.instructionsWarmed % 2000 == 0);
}

void
testTruncatedFinalUnitAccounting()
{
    // k=1 with a unit size that does not divide the stream: the
    // final unit is truncated. Its instructions were simulated in
    // detail but produced no observation, so they must land in
    // instructionsDropped (not instructionsMeasured), and
    // detailedFraction must still count the full detailed cost.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);
    const std::uint64_t length = streamLengthOf(spec, config);

    core::SamplingConfig sc;
    sc.unitSize = 999;
    sc.detailedWarming = 0;
    sc.interval = 1;
    sc.warming = core::WarmingMode::Functional;

    core::SimSession session(spec, config);
    const core::SmartsEstimate est =
        core::SystematicSampler(sc).run(session);

    CHECK(est.units() == length / sc.unitSize);
    CHECK(est.instructionsMeasured == est.units() * sc.unitSize);
    CHECK(est.instructionsDropped == length % sc.unitSize);
    CHECK(est.instructionsDropped > 0); // alu-1 mini isn't a multiple.
    // Everything ran in detail here: measured + dropped = stream.
    CHECK(est.instructionsMeasured + est.instructionsDropped ==
          length);
    CHECK_NEAR(est.detailedFraction(), 1.0, 1e-12);
}

void
testResumedSessionSkipsToGrid()
{
    // A session that has already advanced must resume on the grid:
    // the first measured unit is the first index >= the position,
    // found in O(1) (the old implementation spun one interval per
    // loop iteration).
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);
    const std::uint64_t length = streamLengthOf(spec, config);

    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 0;
    sc.interval = 7;
    sc.offset = 3;
    sc.warming = core::WarmingMode::Functional;

    core::SimSession session(spec, config);
    session.fastForward(500'500, core::WarmingMode::Functional);
    const core::SmartsEstimate est =
        core::SystematicSampler(sc).run(session);

    // Expected: indices 3+7m with start >= 500'500 and a full unit
    // inside the stream.
    std::uint64_t expected = 0;
    for (std::uint64_t idx = 3; idx * 1000 + 1000 <= length;
         idx += 7)
        if (idx * 1000 >= 500'500)
            ++expected;
    CHECK(est.units() == expected);
    CHECK(est.streamLength == length);

    // Absurdly distant offsets terminate without overflow or hangs.
    core::SamplingConfig far = sc;
    far.offset = ~0ull / 500; // unitIdx * u would overflow.
    core::SimSession session2(spec, config);
    const core::SmartsEstimate none =
        core::SystematicSampler(far).run(session2);
    CHECK(none.units() == 0);
    CHECK(none.streamLength == length);
}

void
testDenserIntervalMeasuresMore()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);

    auto unitsAt = [&](std::uint64_t k) {
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 0;
        sc.interval = k;
        sc.warming = core::WarmingMode::Functional;
        core::SimSession session(spec, config);
        return core::SystematicSampler(sc).run(session).units();
    };
    const std::uint64_t dense = unitsAt(5);
    const std::uint64_t sparse = unitsAt(50);
    CHECK(dense > 8 * sparse); // ~10x by construction.
}

} // namespace

int
main()
{
    testChooseInterval();
    testNextGridIndex();
    testUnitGeometry();
    testFirstUnitOffsetZeroWarming();
    testTruncatedFinalUnitAccounting();
    testResumedSessionSkipsToGrid();
    testDenserIntervalMeasuresMore();
    TEST_MAIN_SUMMARY();
}
