/**
 * @file
 * Fixture tests for the smarts_lint contract checks: every check
 * must fire on its fixture at the expected file:line, a justified
 * suppression must silence its diagnostic, check toggles must
 * filter, and — the guard the linter exists for — dropping a field
 * from ArchState::write in the real tree must be caught. Driven
 * in-process through lint::lintFiles plus one pass through the real
 * smarts_lint binary (argv: fixtures dir, lint binary, repo root).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "lint/lint.hh"

#include "check.hh"

namespace {

using smarts::lint::Diagnostic;
using smarts::lint::Options;
using smarts::lint::Report;

std::string fixturesDir; // tests/lint_fixtures
std::string lintBinary;  // $<TARGET_FILE:smarts_lint>
std::string repoRoot;    // PROJECT_SOURCE_DIR

std::string
fixture(const std::string &name)
{
    return fixturesDir + "/" + name;
}

Report
lintOne(const std::string &name, const Options &options = {})
{
    return smarts::lint::lintFiles({fixture(name)}, options);
}

/** Count diagnostics for `check` anchored at `line`. */
int
countAt(const Report &report, const std::string &check, int line)
{
    int n = 0;
    for (const Diagnostic &d : report.diagnostics)
        if (d.check == check && d.line == line)
            ++n;
    return n;
}

void
testEachCheckFiresOnItsFixture()
{
    // no-unordered-iteration: scoped by path, and the fixture lives
    // under a core/ directory precisely so it is in scope.
    Report r = lintOne("core/unordered_iteration.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(1));
    CHECK_EQ(countAt(r, "no-unordered-iteration", 24), 1);
    CHECK(r.diagnostics[0].message.find("counts") !=
          std::string::npos);

    // no-ambient-nondeterminism: one diagnostic per offending line
    // (clock read and rand()).
    r = lintOne("ambient_nondeterminism.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(2));
    CHECK_EQ(countAt(r, "no-ambient-nondeterminism", 15), 1);
    CHECK_EQ(countAt(r, "no-ambient-nondeterminism", 17), 1);

    // serializer-completeness: a skipped field is reported against
    // both write and read, and a write/read order swap is caught.
    r = lintOne("serializer_incomplete.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(3));
    CHECK_EQ(countAt(r, "serializer-completeness", 21), 2);
    CHECK_EQ(countAt(r, "serializer-completeness", 49), 1);
    bool sawSkip = false, sawOrder = false;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.message.find("'loads'") != std::string::npos)
            sawSkip = true;
        if (d.message.find("different orders") != std::string::npos)
            sawOrder = true;
    }
    CHECK(sawSkip);
    CHECK(sawOrder);

    // checksum-before-use: scoped by the "checkpoint" in the file
    // name; the unvalidated decode is anchored at the first decode.
    r = lintOne("checkpoint_load_nocheck.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(1));
    CHECK_EQ(countAt(r, "checksum-before-use", 23), 1);
    CHECK(r.diagnostics[0].message.find("tryLoadBlob") !=
          std::string::npos);

    // ...and the store-index journal loader is in the same scope
    // (the "store_index" file-name rule): decode-before-checksum
    // ordering is anchored at the premature decode line.
    r = lintOne("store_index_nocheck.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(1));
    CHECK_EQ(countAt(r, "checksum-before-use", 29), 1);
    CHECK(r.diagnostics[0].message.find("loadIndexRecord") !=
          std::string::npos);
    CHECK(r.diagnostics[0].message.find("before its first") !=
          std::string::npos);

    // serializer-completeness over the co-run tier's state shapes
    // (dual-world lane counters, owner-tagged shared-cache arrays):
    // a forgotten newest field fires against write AND read, and a
    // vector-field order swap is caught.
    r = lintOne("mix_state_incomplete.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(3));
    CHECK_EQ(countAt(r, "serializer-completeness", 25), 2);
    CHECK_EQ(countAt(r, "serializer-completeness", 52), 1);
    bool sawShadow = false, sawTagOrder = false;
    for (const Diagnostic &d : r.diagnostics) {
        if (d.message.find("'shadowMisses'") != std::string::npos)
            sawShadow = true;
        if (d.message.find("different orders") != std::string::npos)
            sawTagOrder = true;
    }
    CHECK(sawShadow);
    CHECK(sawTagOrder);

    // float-fold-discipline: the merge-path marker opts the file
    // in; both the bare += and std::accumulate fire.
    r = lintOne("float_fold_merge.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(2));
    CHECK_EQ(countAt(r, "float-fold-discipline", 20), 1);
    CHECK_EQ(countAt(r, "float-fold-discipline", 22), 1);
}

void
testSuppressionSilencesAndIsCounted()
{
    const Report r = lintOne("suppressed_clean.cc");
    CHECK(r.clean());
    CHECK_EQ(r.diagnostics.size(), std::size_t(0));
    CHECK_EQ(r.suppressionsHonored, 1);
}

void
testCheckTogglesFilter()
{
    // Only the enabled check runs...
    Options only;
    only.enabled.push_back("no-ambient-nondeterminism");
    Report r = smarts::lint::lintFiles(
        {fixture("ambient_nondeterminism.cc"),
         fixture("float_fold_merge.cc")},
        only);
    CHECK_EQ(r.diagnostics.size(), std::size_t(2));
    for (const Diagnostic &d : r.diagnostics)
        CHECK_EQ(d.check, std::string("no-ambient-nondeterminism"));

    // ...and a disabled check stays quiet while the rest still run.
    Options no;
    no.disabled.push_back("float-fold-discipline");
    r = smarts::lint::lintFiles({fixture("float_fold_merge.cc")}, no);
    CHECK(r.clean());
}

void
testDiagnosticFormatIsClickable()
{
    const Report r = lintOne("core/unordered_iteration.cc");
    CHECK_EQ(r.diagnostics.size(), std::size_t(1));
    const std::string text =
        smarts::lint::formatDiagnostic(r.diagnostics[0]);
    // file:line: [check] message — what editors and CI logs expect.
    CHECK(text.find("unordered_iteration.cc:24: "
                    "[no-unordered-iteration]") != std::string::npos);
}

/**
 * The acceptance guard: drop one field write from the real
 * ArchState::write and the linter must notice. Works on a mutated
 * copy so the tree itself is never touched.
 */
void
testDroppedArchStateFieldIsCaught()
{
    const std::string archPath =
        repoRoot + "/include/smarts/core/arch.hh";
    std::ifstream in(archPath);
    CHECK(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string code = buffer.str();

    // Sanity: the unmutated header is clean.
    Report r = smarts::lint::lintFiles({archPath}, {});
    CHECK(r.clean());

    const std::string dropped = "out.u32(pc);";
    const std::size_t at = code.find(dropped);
    CHECK(at != std::string::npos);
    code.erase(at, dropped.size());

    // Scratch copy in the build-tree cwd, never the source tree.
    const std::string mutated = "test_lint_mutated_arch.hh";
    {
        std::ofstream out(mutated);
        out << code;
    }
    r = smarts::lint::lintFiles({mutated}, {});
    bool caught = false;
    for (const Diagnostic &d : r.diagnostics)
        caught = caught ||
                 (d.check == "serializer-completeness" &&
                  d.message.find("'pc'") != std::string::npos &&
                  d.message.find("never written") !=
                      std::string::npos);
    CHECK(caught);
    std::remove(mutated.c_str());
}

/**
 * Same acceptance guard over the co-run tier: drop the owner-tag
 * array from the real SharedCacheState::write and the linter must
 * notice — the shared hierarchy's state structs are under the same
 * serializer-completeness contract as the solo ones.
 */
void
testDroppedSharedCacheFieldIsCaught()
{
    const std::string path =
        repoRoot + "/include/smarts/mem/shared_hierarchy.hh";
    std::ifstream in(path);
    CHECK(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string code = buffer.str();

    Report r = smarts::lint::lintFiles({path}, {});
    CHECK(r.clean());

    const std::string dropped = "out.vecU8(owners);";
    const std::size_t at = code.find(dropped);
    CHECK(at != std::string::npos);
    code.erase(at, dropped.size());

    const std::string mutated = "test_lint_mutated_shared.hh";
    {
        std::ofstream out(mutated);
        out << code;
    }
    r = smarts::lint::lintFiles({mutated}, {});
    bool caught = false;
    for (const Diagnostic &d : r.diagnostics)
        caught = caught ||
                 (d.check == "serializer-completeness" &&
                  d.message.find("'owners'") != std::string::npos &&
                  d.message.find("never written") !=
                      std::string::npos);
    CHECK(caught);
    std::remove(mutated.c_str());
}

/** One pass through the installed CLI: exit codes and output. */
void
testBinaryEndToEnd()
{
    auto run = [&](const std::string &args, std::string *out) {
        const std::string cmd = lintBinary + " " + args + " 2>&1";
        FILE *pipe = popen(cmd.c_str(), "r");
        CHECK(pipe != nullptr);
        if (!pipe)
            return -1;
        char buf[512];
        out->clear();
        while (std::fgets(buf, sizeof(buf), pipe))
            out->append(buf);
        const int status = pclose(pipe);
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    };

    std::string out;
    // Violations -> exit 1 with a file:line diagnostic.
    CHECK_EQ(run(fixture("ambient_nondeterminism.cc"), &out), 1);
    CHECK(out.find("ambient_nondeterminism.cc:15:") !=
          std::string::npos);

    // A suppressed fixture -> exit 0 and the suppression is counted.
    CHECK_EQ(run(fixture("suppressed_clean.cc"), &out), 0);
    CHECK(out.find("1 justified suppressions honored") !=
          std::string::npos);

    // --list-checks names all five contracts.
    CHECK_EQ(run("--list-checks", &out), 0);
    for (const std::string &name : smarts::lint::checkNames())
        CHECK(out.find(name) != std::string::npos);

    // Unknown flags and unknown checks are usage errors.
    CHECK_EQ(run("--bogus", &out), 2);
    CHECK_EQ(run("--check=no-such-check x.cc", &out), 2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: test_lint <fixtures-dir> <smarts_lint> "
                     "<repo-root>\n");
        return 2;
    }
    fixturesDir = argv[1];
    lintBinary = argv[2];
    repoRoot = argv[3];

    testEachCheckFiresOnItsFixture();
    testSuppressionSilencesAndIsCounted();
    testCheckTogglesFilter();
    testDiagnosticFormatIsClickable();
    testDroppedArchStateFieldIsCaught();
    testDroppedSharedCacheFieldIsCaught();
    testBinaryEndToEnd();

    TEST_MAIN_SUMMARY();
}
