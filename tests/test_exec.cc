/**
 * @file
 * Exec-layer tests: work-stealing pool correctness (all jobs run,
 * reusable across batches, many more jobs than workers), the
 * single-config engine path agreeing bit-for-bit with the classic
 * SimSession sampler, and the tentpole's safety net — the same
 * ExperimentRunner batch at 1, 2, and 5 threads must produce
 * byte-identical SmartsEstimates.
 */

#include <atomic>
#include <cstring>
#include <vector>

#include "core/multi_session.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "exec/experiment.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"

using namespace smarts;

namespace {

void
testPoolRunsEveryJob()
{
    exec::ThreadPool pool(4);
    CHECK_EQ(pool.threadCount(), 4u);

    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&sum, i] { sum += i; });
    pool.wait();
    CHECK_EQ(sum.load(), 4950);

    // The pool is reusable after wait().
    std::vector<int> out(257, 0);
    exec::parallelForIndexed(pool, out.size(), [&out](std::size_t i) {
        out[i] = static_cast<int>(i) * 3;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] != static_cast<int>(i) * 3) {
            CHECK(out[i] == static_cast<int>(i) * 3);
            break;
        }
    CHECK_EQ(out[256], 768);

    // wait() with nothing pending returns immediately.
    pool.wait();
}

void
testPoolUnevenJobsSteal()
{
    // One long job pins a worker; the short jobs must still drain
    // via stealing rather than queueing behind it.
    exec::ThreadPool pool(2);
    std::atomic<int> done{0};
    pool.submit([&done] {
        volatile double x = 1.0;
        for (int i = 0; i < 2'000'000; ++i)
            x = x * 1.0000001 + 0.1;
        ++done;
    });
    for (int i = 0; i < 50; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    CHECK_EQ(done.load(), 51);
}

/** Bit-exact fingerprint of an estimate set. */
void
fingerprint(const core::MatchedEstimate &est,
            std::vector<std::uint64_t> &out)
{
    auto addDouble = [&out](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        out.push_back(bits);
    };
    for (const core::SmartsEstimate &e : est.perConfig) {
        out.push_back(e.units());
        addDouble(e.cpi());
        addDouble(e.epi());
        addDouble(e.cpiStats.variance());
        addDouble(e.epiStats.variance());
        out.push_back(e.instructionsMeasured);
        out.push_back(e.instructionsWarmed);
        out.push_back(e.streamLength);
    }
    for (const stats::OnlineStats &d : est.cpiDelta) {
        out.push_back(d.count());
        addDouble(d.mean());
        addDouble(d.variance());
    }
}

std::vector<exec::ExperimentSpec>
determinismBatch()
{
    const auto c8 = uarch::MachineConfig::eightWay();
    const auto c16 = uarch::MachineConfig::sixteenWay();
    std::vector<exec::ExperimentSpec> specs;
    for (const char *name : {"sort-1", "bsearch-1", "mix-1"}) {
        exec::ExperimentSpec spec;
        spec.benchmark =
            workloads::findBenchmark(name, workloads::Scale::Mini);
        spec.configs = {c8, c16};
        spec.sampling.unitSize = 1000;
        spec.sampling.detailedWarming = 2000;
        spec.sampling.interval = 40;
        spec.sampling.warming = core::WarmingMode::Functional;
        spec.randomizeOffset = true;
        specs.push_back(spec);

        // A single-config cell in the same batch.
        exec::ExperimentSpec single = spec;
        single.configs = {c8};
        single.randomizeOffset = false;
        specs.push_back(single);
    }
    return specs;
}

void
testEstimatesIdenticalAcrossThreadCounts()
{
    const auto specs = determinismBatch();

    std::vector<std::uint64_t> prints[3];
    const unsigned threadCounts[3] = {1, 2, 5};
    for (int t = 0; t < 3; ++t) {
        exec::ExperimentRunner runner(threadCounts[t]);
        const auto results = runner.run(specs);
        CHECK_EQ(results.size(), specs.size());
        for (const exec::ExperimentResult &r : results)
            fingerprint(r.estimate, prints[t]);
    }
    CHECK(!prints[0].empty());
    CHECK(prints[0] == prints[1]);
    CHECK(prints[0] == prints[2]);
}

void
testJobSeedIsSchedulingIndependent()
{
    const auto specs = determinismBatch();
    // Seeds depend only on (spec, index): recomputing them matches
    // what the runner recorded, at any thread count.
    exec::ExperimentRunner runner(3);
    const auto results = runner.run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i)
        CHECK_EQ(results[i].rngSeed,
                 exec::ExperimentRunner::jobSeed(specs[i], i));
    // Distinct jobs get distinct seeds.
    CHECK(results[0].rngSeed != results[1].rngSeed);
}

void
testSingleConfigEngineMatchesClassicSampler()
{
    const auto c8 = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 25;
    sc.warming = core::WarmingMode::Functional;

    core::SimSession classic(spec, c8);
    const core::SmartsEstimate a =
        core::SystematicSampler(sc).run(classic);

    core::MultiSession multi(spec, {c8});
    const core::MatchedEstimate b =
        core::SystematicSampler(sc).runMatched(multi);

    CHECK_EQ(a.units(), b.perConfig[0].units());
    CHECK_EQ(a.instructionsMeasured,
             b.perConfig[0].instructionsMeasured);
    CHECK_EQ(a.instructionsWarmed, b.perConfig[0].instructionsWarmed);
    CHECK_EQ(a.streamLength, b.perConfig[0].streamLength);
    // Bit-exact, not just close:
    CHECK_EQ(a.cpi(), b.perConfig[0].cpi());
    CHECK_EQ(a.epi(), b.perConfig[0].epi());
    CHECK_EQ(a.cpiStats.variance(), b.perConfig[0].cpiStats.variance());
}

void
testMatchedPairsShareUnits()
{
    const auto c8 = uarch::MachineConfig::eightWay();
    const auto c16 = uarch::MachineConfig::sixteenWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 20;
    sc.warming = core::WarmingMode::Functional;

    core::MultiSession multi(spec, {c8, c16});
    const core::MatchedEstimate est =
        core::SystematicSampler(sc).runMatched(multi);

    // Both configs measured the same number of units over the same
    // stream, and the per-config estimates match dedicated
    // single-config runs bit-for-bit (the matched engine does not
    // perturb either machine's simulation).
    CHECK_EQ(est.perConfig[0].units(), est.perConfig[1].units());
    CHECK(est.perConfig[0].units() > 0);
    CHECK_EQ(est.cpiDelta[1].count(), est.perConfig[0].units());

    core::SimSession solo16(spec, c16);
    const core::SmartsEstimate ref16 =
        core::SystematicSampler(sc).run(solo16);
    CHECK_EQ(est.perConfig[1].cpi(), ref16.cpi());

    // The delta stats really are (cpi_16 - cpi_8) per unit.
    CHECK_NEAR(est.cpiDelta[1].mean(),
               est.perConfig[1].cpi() - est.perConfig[0].cpi(),
               1e-12);
    // Matched pairs beat two independent runs on the comparison CI.
    CHECK(est.deltaCiRelative(1, 0.997) <
          est.independentDeltaCiRelative(1, 0.997));
}

} // namespace

int
main()
{
    testPoolRunsEveryJob();
    testPoolUnevenJobsSteal();
    testEstimatesIdenticalAcrossThreadCounts();
    testJobSeedIsSchedulingIndependent();
    testSingleConfigEngineMatchesClassicSampler();
    testMatchedPairsShareUnits();
    TEST_MAIN_SUMMARY();
}
