/**
 * @file
 * Fuzz-style robustness tests for the two binary decoders that
 * consume files an external party (or a crashed writer) controls:
 * util::deltaDecode and the StoreIndex journal replay. Deterministic
 * xoshiro-driven mutation loops — >= 10k cases each — assert the
 * decoders' whole contract: REFUSE (nullopt/diagnostic) or decode,
 * never crash, never overrun (the latter enforced by the CI
 * ASan/UBSan matrices running this binary). Seeds are fixed so a
 * failure reproduces bit-for-bit on any host.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "check.hh"
#include "core/store_index.hh"
#include "util/delta_codec.hh"
#include "util/rng.hh"

namespace fs = std::filesystem;

namespace {

using namespace smarts;

constexpr const char *kRoot = "fuzz_codec_tmp";

/** Mutate 1..8 random bytes; sometimes truncate or extend. */
std::vector<std::uint8_t>
mutate(const std::vector<std::uint8_t> &original,
       Xoshiro256StarStar &rng)
{
    std::vector<std::uint8_t> bytes = original;
    if (!bytes.empty() && rng.chance(0.15))
        bytes.resize(rng.below(bytes.size()));
    if (rng.chance(0.10)) {
        const std::uint64_t extra = 1 + rng.below(32);
        for (std::uint64_t i = 0; i < extra; ++i)
            bytes.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    if (!bytes.empty()) {
        const std::uint64_t flips = 1 + rng.below(8);
        for (std::uint64_t i = 0; i < flips; ++i)
            bytes[rng.below(bytes.size())] =
                static_cast<std::uint8_t>(rng.next());
    }
    return bytes;
}

/** A realistically sparse payload pair, as livepoint chains see. */
void
makeCorpusPair(Xoshiro256StarStar &rng, std::size_t size,
               std::vector<std::uint8_t> &base,
               std::vector<std::uint8_t> &data)
{
    base.assign(size, 0);
    for (std::size_t i = 0; i < size; ++i)
        base[i] = static_cast<std::uint8_t>(rng.next());
    data = base;
    // Sparse diffs: a few short dirty stretches.
    const std::uint64_t stretches = 1 + rng.below(6);
    for (std::uint64_t s = 0; s < stretches && !data.empty(); ++s) {
        std::size_t at = rng.below(data.size());
        const std::uint64_t len = 1 + rng.below(64);
        for (std::uint64_t i = 0; i < len && at < data.size();
             ++i, ++at)
            data[at] = static_cast<std::uint8_t>(rng.next());
    }
}

void
testDeltaCodecFuzz()
{
    Xoshiro256StarStar rng(0xde17ac0de5eedull);

    // Corpus of valid (base, data, delta) triples at several sizes,
    // including empty and size-mismatched bases.
    struct Case
    {
        std::vector<std::uint8_t> base;
        std::vector<std::uint8_t> data;
        std::vector<std::uint8_t> delta;
    };
    std::vector<Case> corpus;
    for (std::size_t size : {std::size_t(0), std::size_t(1),
                             std::size_t(63), std::size_t(256),
                             std::size_t(2048)}) {
        Case c;
        makeCorpusPair(rng, size, c.base, c.data);
        c.delta = util::deltaEncode(c.base, c.data);
        corpus.push_back(std::move(c));
        // A first-of-chain record: empty base, data stored literal.
        Case first;
        makeCorpusPair(rng, size, first.data, first.data);
        first.delta = util::deltaEncode({}, first.data);
        corpus.push_back(std::move(first));
    }

    // Sanity: every corpus delta roundtrips exactly.
    for (const Case &c : corpus) {
        std::string error;
        const auto out = util::deltaDecode(c.base, c.delta, &error);
        CHECK(out && *out == c.data);
    }

    // Mutation loop: 12k mutated deltas must each either refuse
    // with a diagnostic or produce a payload — never crash or read
    // out of bounds (ASan/UBSan enforce the latter in CI).
    std::uint64_t refused = 0;
    std::uint64_t decoded = 0;
    for (int i = 0; i < 12000; ++i) {
        const Case &c = corpus[rng.below(corpus.size())];
        const std::vector<std::uint8_t> bad = mutate(c.delta, rng);
        std::string error;
        const auto out = util::deltaDecode(c.base, bad, &error);
        if (out) {
            ++decoded;
            if (bad == c.delta)
                CHECK(*out == c.data);
        } else {
            ++refused;
            CHECK(!error.empty());
        }
    }
    // The loop must exercise BOTH outcomes, or the property is
    // vacuous (e.g. a mutator that always destroys the header).
    CHECK(refused > 0);
    CHECK(decoded > 0);

    // Pure-garbage streams: all refusals, never crashes.
    for (int i = 0; i < 3000; ++i) {
        std::vector<std::uint8_t> garbage(rng.below(512));
        for (std::uint8_t &b : garbage)
            b = static_cast<std::uint8_t>(rng.next());
        std::string error;
        const auto out = util::deltaDecode({}, garbage, &error);
        if (!out)
            CHECK(!error.empty());
    }
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
testStoreIndexJournalFuzz()
{
    Xoshiro256StarStar rng(0x5104e17dec0dedull);

    const std::string valid =
        std::string(kRoot) + "/valid-journal";
    const std::string target =
        std::string(kRoot) + "/fuzzed-journal";

    // Build a realistic journal: adds, touches, removes, replays.
    std::string error;
    const char *rels[] = {"a/lib1.smck", "a/lib2.smck",
                          "b/points.smlp", "mix-a+b/lib.smck"};
    std::uint64_t atime = 0;
    for (int round = 0; round < 6; ++round)
        for (const char *rel : rels) {
            CHECK(core::StoreIndex::appendRecord(
                valid, core::StoreIndex::Op::Add, rel,
                1000 + rng.below(50000), ++atime, &error));
            if (rng.chance(0.5))
                CHECK(core::StoreIndex::appendRecord(
                    valid, core::StoreIndex::Op::Touch, rel, 0,
                    ++atime, &error));
            if (rng.chance(0.2))
                CHECK(core::StoreIndex::appendRecord(
                    valid, core::StoreIndex::Op::Remove, rel, 0,
                    ++atime, &error));
        }

    // Sanity: the untouched journal replays.
    const auto sane = core::StoreIndex::load(valid, &error);
    CHECK(sane.has_value());
    const std::vector<std::uint8_t> journal = readBytes(valid);
    CHECK(journal.size() > 64);

    // Mutation loop: 10k corrupted journals must each either refuse
    // with a diagnostic or replay into a consistent index.
    std::uint64_t refused = 0;
    std::uint64_t replayed = 0;
    for (int i = 0; i < 10000; ++i) {
        writeBytes(target, mutate(journal, rng));
        std::string why;
        const auto index = core::StoreIndex::load(target, &why);
        if (index) {
            ++replayed;
            // Whatever replayed must be internally consistent.
            std::uint64_t total = 0;
            for (const auto &entry : index->entries())
                total += entry.second.bytes;
            CHECK_EQ(total, index->totalBytes());
            CHECK(index->entryCount() <= index->journalRecords());
        } else {
            ++refused;
            CHECK(!why.empty());
        }
    }
    CHECK(refused > 0);
    // Per-record checksums mean most byte flips are caught; a
    // replay can still succeed (e.g. mutations inside a record that
    // a truncation then drops), so don't require replays — but DO
    // require the loop saw refusals, and print nothing either way.

    // Pure-garbage files: never crash.
    for (int i = 0; i < 2000; ++i) {
        std::vector<std::uint8_t> garbage(rng.below(256));
        for (std::uint8_t &b : garbage)
            b = static_cast<std::uint8_t>(rng.next());
        writeBytes(target, garbage);
        std::string why;
        const auto index = core::StoreIndex::load(target, &why);
        if (!index)
            CHECK(!why.empty());
    }
    (void)replayed;
}

} // namespace

int
main()
{
    fs::remove_all(kRoot);
    fs::create_directories(kRoot);

    testDeltaCodecFuzz();
    testStoreIndexJournalFuzz();
    TEST_MAIN_SUMMARY();
}
