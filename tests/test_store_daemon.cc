/**
 * @file
 * Store-daemon protocol tests (docs/store-service.md): drive the
 * real smarts_stored binary (path via argv[1]) through the
 * StoreServiceClient library path.
 *
 * The contracts under test:
 *  - two concurrent leaders missing on the SAME key trigger exactly
 *    ONE capture (single-flight), observable from the outside via
 *    the cumulative counter echo in every reply;
 *  - a library served by the daemon folds to an estimate
 *    bit-identical to a serial SystematicSampler::run() — the
 *    daemon is a cache, never a source of drift;
 *  - a daemon that dies mid-lookup degrades to the leader's local
 *    store, which still produces the identical estimate;
 *  - one daemon per service directory (the presence marker is an
 *    exclusive lock), and removing the marker stops it cleanly.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "distrib/store_service.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "util/logging.hh"
#include "workloads/benchmark.hh"

#include "check.hh"
#include "estimate_fingerprint.hh"

using namespace smarts;
using smarts::test::fingerprint;
namespace fs = std::filesystem;

namespace {

constexpr const char *kRoot = "test_store_daemon_root";

std::string g_storedBin; ///< smarts_stored path, from argv[1].

workloads::BenchmarkSpec
spec()
{
    return workloads::findBenchmark("sort-1",
                                    workloads::Scale::Mini);
}

core::SamplingConfig
sampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 10;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

/** The serial ground truth every served library must fold back to. */
const core::SmartsEstimate &
serialEstimate()
{
    static const core::SmartsEstimate serial = [] {
        core::SimSession session(spec(),
                                 uarch::MachineConfig::eightWay());
        return core::SystematicSampler(sampling()).run(session);
    }();
    return serial;
}

/** Completion-mode fold of @p library; bit-identical to serial by
 *  the anytime contract, so any daemon-path corruption shows up. */
std::vector<std::uint64_t>
foldFingerprint(const core::LivePointLibrary &library)
{
    const auto config = uarch::MachineConfig::eightWay();
    auto factory = [&config] {
        return std::make_unique<core::SimSession>(spec(), config);
    };
    exec::ThreadPool pool(1);
    core::AnytimeOptions options;
    options.target.epsilon = 0.0; // completion mode: measure all.
    const core::AnytimeResult result =
        core::SystematicSampler(sampling())
            .runAnytime(factory, library, pool, options);
    return fingerprint(result.estimate);
}

/** Launch the daemon via popen (stderr folded into the pipe so the
 *  test log carries its output). */
FILE *
startDaemon(const std::string &root, const std::string &svc,
            const std::string &json)
{
    const std::string cmd = log::format(
        g_storedBin, " --root=", root, " --svc=", svc,
        " --ttl=120 --poll-ms=5 --json=", json, " 2>&1");
    return ::popen(cmd.c_str(), "r");
}

/** Drain a popen pipe to EOF and return (exitStatus, output). */
std::pair<int, std::string>
finishDaemon(FILE *pipe)
{
    std::string output;
    char buf[512];
    while (std::fgets(buf, sizeof buf, pipe))
        output += buf;
    const int raw = ::pclose(pipe);
    const int status =
        raw >= 0 && WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    return {status, output};
}

bool
waitForMarker(const std::string &svc, bool present)
{
    for (int i = 0; i < 2000; ++i) {
        if (distrib::daemonPresent(svc) == present)
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    }
    return false;
}

std::string
slurp(const std::string &path)
{
    std::string all;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return all;
    char buf[512];
    while (std::fgets(buf, sizeof buf, f))
        all += buf;
    std::fclose(f);
    return all;
}

void
testTwoLeadersSingleFlightBitIdentical()
{
    const std::string base = std::string(kRoot) + "/flight";
    const std::string droot = base + "/daemon_store";
    const std::string svc = base + "/svc";
    const std::string json = base + "/BENCH_store.json";
    fs::create_directories(base);

    FILE *daemon = startDaemon(droot, svc, json);
    CHECK(daemon != nullptr);
    CHECK(waitForMarker(svc, true));

    // A second daemon over the same service directory must refuse
    // to start (the presence marker is an exclusive lock).
    {
        FILE *rival = startDaemon(droot + "2", svc, "");
        CHECK(rival != nullptr);
        const auto [status, output] = finishDaemon(rival);
        CHECK_EQ(status, 1);
        CHECK(output.find("already exists") != std::string::npos);
    }

    // Two leaders, each with its OWN cold local store, race the
    // same key. CHECK is not thread-safe: collect outcomes, assert
    // after the join.
    std::vector<distrib::StoreServiceOutcome> outcomes(2);
    std::vector<std::thread> leaders;
    for (int i = 0; i < 2; ++i)
        leaders.emplace_back([&, i] {
            core::CheckpointStore local(
                log::format(base, "/leader", i, "_store"));
            distrib::StoreServiceClient client(
                svc, log::format("leader", i));
            outcomes[i] = client.ensureLivePoints(
                local, spec(), uarch::MachineConfig::eightWay(),
                sampling(), 60.0);
        });
    for (std::thread &t : leaders)
        t.join();

    int captured = 0;
    for (const distrib::StoreServiceOutcome &o : outcomes) {
        CHECK(o.library.has_value());
        CHECK(!o.degraded);
        CHECK(o.reply.has_value());
        // The single-flight proof: however the two requests landed
        // (one scan or two), the daemon captured exactly once.
        CHECK_EQ(o.reply->captures, std::uint64_t(1));
        CHECK(o.reply->hits + o.reply->misses >= 1);
        CHECK(o.reply->hits + o.reply->misses <= 2);
        captured += o.captured ? 1 : 0;
        CHECK(foldFingerprint(*o.library) ==
              fingerprint(serialEstimate()));
    }
    CHECK(captured >= 1); // same scan: both Captured; else one Hit.

    // A third, later leader is a pure warm hit: no new capture.
    {
        core::CheckpointStore local(base + "/leader2_store");
        distrib::StoreServiceClient client(svc, "leader2");
        const distrib::StoreServiceOutcome o =
            client.ensureLivePoints(
                local, spec(), uarch::MachineConfig::eightWay(),
                sampling(), 60.0);
        CHECK(o.library.has_value());
        CHECK(!o.degraded);
        CHECK(!o.captured);
        CHECK(o.reply.has_value());
        CHECK_EQ(o.reply->captures, std::uint64_t(1));
        CHECK(o.reply->hits >= 1);
    }

    // Removing the marker stops the daemon; it exits 0 and writes
    // the stats artifact with the hit-rate and latency tail.
    std::error_code ec;
    fs::remove(distrib::daemonMarkerPath(svc), ec);
    const auto [status, output] = finishDaemon(daemon);
    CHECK_EQ(status, 0);
    CHECK(output.find("captured 1 library") != std::string::npos);
    const std::string stats = slurp(json);
    CHECK(stats.find("\"captures\": 1") != std::string::npos);
    CHECK(stats.find("\"hit_rate\"") != std::string::npos);
    CHECK(stats.find("\"lookup_ms\"") != std::string::npos);
}

void
testDaemonDeathDegradesToLocal()
{
    const std::string base = std::string(kRoot) + "/death";
    const std::string svc = base + "/svc";
    fs::create_directories(svc);

    // Fake a live daemon: the presence marker with nobody behind
    // it. The client publishes its request, polls, and must notice
    // the marker vanish (death mid-lookup) rather than wait out the
    // full timeout.
    const std::string marker = distrib::daemonMarkerPath(svc);
    {
        std::FILE *f = std::fopen(marker.c_str(), "w");
        CHECK(f != nullptr);
        std::fprintf(f, "0\n");
        std::fclose(f);
    }

    distrib::StoreServiceOutcome outcome;
    std::thread leader([&] {
        core::CheckpointStore local(base + "/leader_store");
        distrib::StoreServiceClient client(svc, "leader");
        outcome = client.ensureLivePoints(
            local, spec(), uarch::MachineConfig::eightWay(),
            sampling(), 60.0);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::error_code ec;
    fs::remove(marker, ec);
    leader.join();

    // Degraded, but correct: the local store captured the library
    // and it folds to the identical estimate.
    CHECK(outcome.library.has_value());
    CHECK(outcome.degraded);
    CHECK(outcome.captured);
    CHECK(!outcome.reply.has_value());
    CHECK(foldFingerprint(*outcome.library) ==
          fingerprint(serialEstimate()));

    // The abandoned request file was withdrawn on the way out.
    std::size_t requests = 0;
    fs::directory_iterator it(fs::path(svc) / "requests", ec);
    if (!ec)
        for (const fs::directory_entry &entry : it)
            requests += entry.path().extension() == ".req";
    CHECK_EQ(requests, std::size_t(0));
}

void
testNoDaemonIsTheNormalLocalPath()
{
    const std::string base = std::string(kRoot) + "/nodaemon";
    fs::create_directories(base);

    // No marker at all: the client takes the local path WITHOUT
    // flagging degradation (a service directory that never had a
    // daemon is not an error).
    core::CheckpointStore local(base + "/leader_store");
    distrib::StoreServiceClient client(base + "/svc", "leader");
    const distrib::StoreServiceOutcome outcome =
        client.ensureLivePoints(local, spec(),
                                uarch::MachineConfig::eightWay(),
                                sampling(), 60.0);
    CHECK(outcome.library.has_value());
    CHECK(!outcome.degraded);
    CHECK(outcome.captured);
    CHECK(!outcome.reply.has_value());
    CHECK(foldFingerprint(*outcome.library) ==
          fingerprint(serialEstimate()));

    // And warm on the second call: served from the local store.
    const distrib::StoreServiceOutcome warm =
        client.ensureLivePoints(local, spec(),
                                uarch::MachineConfig::eightWay(),
                                sampling(), 60.0);
    CHECK(warm.library.has_value());
    CHECK(!warm.degraded);
    CHECK(!warm.captured);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: test_store_daemon <smarts_stored>\n");
        return 2;
    }
    g_storedBin = argv[1];

    fs::remove_all(kRoot);
    fs::create_directories(kRoot);

    testTwoLeadersSingleFlightBitIdentical();
    testDaemonDeathDegradesToLocal();
    testNoDaemonIsTheNormalLocalPath();

    TEST_MAIN_SUMMARY();
}
