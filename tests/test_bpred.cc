/**
 * @file
 * Direct unit tests for the bpred layer: 2-bit counter training,
 * gshare index aliasing (two branches sharing a counter interfere),
 * BTB tag/replacement behaviour for indirect jumps, and RAS push/
 * pop including overflow wrap-around and underflow fallback.
 */

#include "bpred/branch_unit.hh"
#include "sisa/encoding.hh"

#include "check.hh"

using namespace smarts;

namespace {

sisa::DecodedInst
condBranch(std::int32_t offset)
{
    sisa::DecodedInst di;
    di.op = sisa::Opcode::BEQ;
    di.imm = offset;
    return di;
}

sisa::DecodedInst
call(std::uint8_t linkReg, std::int32_t offset)
{
    sisa::DecodedInst di;
    di.op = sisa::Opcode::JAL;
    di.a = linkReg;
    di.imm = offset;
    return di;
}

sisa::DecodedInst
jumpReg(std::uint8_t reg)
{
    sisa::DecodedInst di;
    di.op = sisa::Opcode::JR;
    di.a = reg;
    return di;
}

void
testCounterTraining()
{
    bpred::BranchUnit bp({4, 16, 4});
    const auto br = condBranch(64);
    const std::uint32_t pc = 0x1000;

    // Counters start weakly-not-taken: first prediction is NT.
    CHECK(!bp.predict(pc, br).taken);

    // One taken outcome moves the 2-bit counter to weakly taken.
    bp.update(pc, br, true, pc + 64);
    // History changed too; retrain on the new index until saturated.
    for (int i = 0; i < 8; ++i) {
        const bpred::Prediction p = bp.predict(pc, br);
        bp.update(pc, br, true, pc + 64);
        if (i >= 4) {
            CHECK(p.taken);
            CHECK_EQ(p.target, pc + 64);
        }
    }
}

void
testGshareAliasing()
{
    // 2^2 = 4 counters: pcs 0x1000 and 0x1040 index bits
    // (pc >> 2) & 3 = 0 for both -> they share a counter when the
    // history is equal, so training one flips the other.
    bpred::BranchUnit bp({2, 16, 4});
    const auto br = condBranch(16);
    const std::uint32_t pcA = 0x1000;
    const std::uint32_t pcB = 0x1040;
    CHECK_EQ((pcA >> 2) & 3u, (pcB >> 2) & 3u);

    // Saturate the shared counter taken via branch A with an
    // all-taken history (history is the same 2 bits for both).
    for (int i = 0; i < 6; ++i)
        bp.update(pcA, br, true, pcA + 16);

    // Branch B, never trained, now predicts taken: aliasing.
    CHECK(bp.predict(pcB, br).taken);

    // Re-train not-taken through B and A flips with it.
    for (int i = 0; i < 6; ++i)
        bp.update(pcB, br, false, pcB + 4);
    CHECK(!bp.predict(pcA, br).taken);
}

void
testBtbIndirectTargets()
{
    bpred::BranchUnit bp({4, 4, 4});
    const auto jr = jumpReg(5); // non-return indirect jump.
    const std::uint32_t pc = 0x2000;

    // Untrained: falls through (no BTB entry).
    CHECK_EQ(bp.predict(pc, jr).target, pc + 4);

    // Trained: predicts the recorded target.
    bp.update(pc, jr, true, 0x3000);
    CHECK_EQ(bp.predict(pc, jr).target, 0x3000u);

    // 4-entry BTB: pc + 16 maps to the same slot and evicts it.
    const std::uint32_t alias = pc + 16;
    bp.update(alias, jr, true, 0x4000);
    CHECK_EQ(bp.predict(alias, jr).target, 0x4000u);
    CHECK_EQ(bp.predict(pc, jr).target, pc + 4); // tag mismatch.
}

void
testRasPushPop()
{
    bpred::BranchUnit bp({4, 16, 4});
    const auto ret = jumpReg(31);

    // Calls through r31 push; returns pop in LIFO order.
    bp.update(0x1000, call(31, 64), true, 0x1040);
    bp.update(0x2000, call(31, 64), true, 0x2040);
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x2004u);
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x1004u);

    // JAL with a zero link register does not push (not a call).
    bp.update(0x3000, call(0, 64), true, 0x3040);
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x9004u); // empty RAS.
}

void
testRasOverflowWrapsAround()
{
    // 4-entry RAS; 6 calls overwrite the two oldest frames.
    bpred::BranchUnit bp({4, 16, 4});
    const auto ret = jumpReg(31);
    for (std::uint32_t i = 0; i < 6; ++i)
        bp.update(0x1000 + i * 0x100, call(31, 64), true, 0);

    // The four most recent return addresses pop correctly...
    for (std::uint32_t i = 6; i > 2; --i)
        CHECK_EQ(bp.predict(0x9000, ret).target,
                 0x1000u + (i - 1) * 0x100 + 4);

    // ...then the wrapped slots replay the newest frames' values
    // (a real RAS mispredicts here; it must not crash or hang).
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x1504u);
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x1404u);
}

void
testRasUnderflow()
{
    bpred::BranchUnit bp({4, 16, 4});
    const auto ret = jumpReg(31);

    // Pop on empty: falls back to the BTB (miss -> fallthrough).
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x9004u);

    // popReturn on empty is a no-op; a later push still works.
    bp.popReturn();
    bp.popReturn();
    bp.update(0x1000, call(31, 64), true, 0x1040);
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x1004u);
}

void
testWarmPopKeepsDepthInSync()
{
    // Functional warming pops via popReturn instead of predict();
    // the depth must track exactly.
    bpred::BranchUnit bp({4, 16, 4});
    const auto ret = jumpReg(31);
    bp.update(0x1000, call(31, 64), true, 0x1040);
    bp.update(0x2000, call(31, 64), true, 0x2040);
    bp.popReturn(); // warming consumed the 0x2004 return.
    CHECK_EQ(bp.predict(0x9000, ret).target, 0x1004u);
}

void
testReset()
{
    bpred::BranchUnit bp({4, 16, 4});
    const auto br = condBranch(16);
    for (int i = 0; i < 8; ++i)
        bp.update(0x1000, br, true, 0x1010);
    bp.update(0x1000, call(31, 64), true, 0x1040);
    bp.reset();
    CHECK(!bp.predict(0x1000, br).taken);
    CHECK_EQ(bp.predict(0x9000, jumpReg(31)).target, 0x9004u);
    CHECK_EQ(bp.lookups(), 2u);
}

} // namespace

int
main()
{
    testCounterTraining();
    testGshareAliasing();
    testBtbIndirectTargets();
    testRasPushPop();
    testRasOverflowWrapsAround();
    testRasUnderflow();
    testWarmPopKeepsDepthInSync();
    testReset();
    TEST_MAIN_SUMMARY();
}
