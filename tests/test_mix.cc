/**
 * @file
 * Determinism and persistence contracts of the co-run tier
 * (mp::MixSampler): runMix estimates are byte-identical serial vs 2
 * vs 5 threads and cold-store vs warm-store; a MixLibrary
 * save/load roundtrip is byte-exact and every mis-load refuses by
 * name (wrong mix, solo-flavor file, mix file through the solo
 * loader); and a hand-downgraded version-1 solo checkpoint library
 * still loads through the v1->v2 migration path and reproduces the
 * serial estimate bit for bit.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check.hh"
#include "core/checkpoint.hh"
#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "estimate_fingerprint.hh"
#include "exec/thread_pool.hh"
#include "mp/mix_library.hh"
#include "mp/mix_sampler.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "workloads/benchmark.hh"

namespace fs = std::filesystem;

namespace {

using namespace smarts;
using smarts::test::fingerprint;

const char *kRoot = "test_mix_store";

core::SamplingConfig
mixSampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 500;
    sc.detailedWarming = 1000;
    sc.interval = 50;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

/** The quick suite's contended pair (see tests/test_shared_mem.cc). */
mp::WorkloadMix
contendedMix(mem::PartitionPolicy policy)
{
    return mp::WorkloadMix::of(
        {workloads::findBenchmark("chase-1", workloads::Scale::Mini),
         workloads::findBenchmark("mix-1", workloads::Scale::Mini)},
        policy);
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Rewrite @p path's trailing checksum after tampering with it. */
void
resealChecksum(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::size_t payload = bytes.size() - 8;
    const std::uint64_t sum = util::fnv1a(bytes.data(), payload);
    for (int i = 0; i < 8; ++i)
        bytes[payload + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    writeFileBytes(path, bytes);
}

/**
 * runMix must produce byte-identical estimates serially and at 2 and
 * 5 threads — the mix determinism contract, under real contention
 * and under way partitioning.
 */
void
testMixThreadDeterminism()
{
    const uarch::MachineConfig machine =
        uarch::MachineConfig::eightWay();
    const core::SamplingConfig sc = mixSampling();
    for (const mem::PartitionPolicy policy :
         {mem::PartitionPolicy::Shared,
          mem::PartitionPolicy::WayPartitioned}) {
        const mp::WorkloadMix mix = contendedMix(policy);
        const mp::MixEstimate serial = mp::runMix(mix, machine, sc);
        CHECK_EQ(serial.perProgram.size(), std::size_t(2));
        // The contract must not hold vacuously on an empty sample.
        CHECK(serial.perProgram[0].coRun.cpiStats.count() > 0);
        const mp::MixEstimate two =
            mp::runMix(mix, machine, sc, /*threads=*/2);
        const mp::MixEstimate five =
            mp::runMix(mix, machine, sc, /*threads=*/5);
        CHECK(serial.fingerprint() == two.fingerprint());
        CHECK(serial.fingerprint() == five.fingerprint());
        // The QoS numbers behind the bench table derive from the
        // fingerprinted state, so they are pinned transitively; spot
        // check that slowdown is sane under genuine contention.
        CHECK(serial.perProgram[0].slowdown() >= 1.0);
    }
}

/**
 * estimateMix through a CheckpointStore: the cold run captures and
 * persists the mix library, the warm run loads it back, and both
 * estimates are byte-identical (to each other and to serial).
 */
void
testMixStoreColdVsWarm()
{
    const uarch::MachineConfig machine =
        uarch::MachineConfig::eightWay();
    const core::SamplingConfig sc = mixSampling();
    const mp::WorkloadMix mix =
        contendedMix(mem::PartitionPolicy::Shared);

    const mp::MixEstimate serial = mp::runMix(mix, machine, sc);

    core::CheckpointStore store(kRoot);
    const std::string path =
        store.pathFor(mp::mixKey(mix, machine, sc));
    CHECK(!fs::exists(path));

    const mp::MixEstimate cold =
        mp::estimateMix(mix, machine, sc, /*threads=*/3, store);
    CHECK(fs::exists(path));
    const mp::MixEstimate warm =
        mp::estimateMix(mix, machine, sc, /*threads=*/2, store);

    CHECK(serial.fingerprint() == cold.fingerprint());
    CHECK(serial.fingerprint() == warm.fingerprint());
}

/**
 * MixLibrary persistence: save/load roundtrips byte-exactly, and
 * every mis-load refuses with a diagnostic — a mix library under a
 * different mix, a solo library through the mix loader, and a mix
 * library through the solo loader.
 */
void
testMixLibraryRoundtripAndRefusals()
{
    const uarch::MachineConfig machine =
        uarch::MachineConfig::eightWay();
    const core::SamplingConfig sc = mixSampling();
    const mp::WorkloadMix mix =
        contendedMix(mem::PartitionPolicy::Shared);
    const core::LibraryKey key = mp::mixKey(mix, machine, sc);

    // Build a real mix library over the full stream.
    mp::MixSampler sampler(mix, machine, sc);
    const std::uint64_t streamLength =
        sampler.measureStreamLength();
    const std::vector<core::ShardSpec> plan =
        core::CheckpointLibrary::planShards(sc, streamLength, 3);
    mp::MixSession capture = sampler.makeSession();
    const mp::MixLibrary built =
        mp::MixLibrary::build(capture, sc, plan);
    CHECK(built.complete());

    const std::string path = std::string(kRoot) + "/roundtrip.smck";
    std::string error;
    CHECK(built.save(mix, key, path, &error));

    const auto loaded = mp::MixLibrary::load(path, mix, key, &error);
    CHECK(loaded.has_value());
    {
        util::BinaryWriter a;
        built.serialize(mix, key, a);
        util::BinaryWriter b;
        loaded->serialize(mix, key, b);
        CHECK(a.buffer() == b.buffer());
    }

    // A loaded library must drive shards bit-identically to serial.
    {
        exec::ThreadPool pool(2);
        const mp::MixEstimate fromLibrary =
            sampler.runSharded(*loaded, pool);
        const mp::MixEstimate serial = sampler.run();
        CHECK(serial.fingerprint() == fromLibrary.fingerprint());
    }

    // Wrong mix: same machine and design, different co-runner.
    {
        const mp::WorkloadMix other = mp::WorkloadMix::of(
            {workloads::findBenchmark("chase-1",
                                      workloads::Scale::Mini),
             workloads::findBenchmark("phase-1",
                                      workloads::Scale::Mini)});
        error.clear();
        const auto refused = mp::MixLibrary::load(
            path, other, mp::mixKey(other, machine, sc), &error);
        CHECK(!refused.has_value());
        CHECK(!error.empty());
    }

    // A solo library through the mix loader refuses by name.
    {
        const workloads::BenchmarkSpec spec =
            workloads::findBenchmark("chase-1",
                                     workloads::Scale::Mini);
        core::SimSession session(spec, machine);
        std::uint64_t soloLength = 0;
        {
            core::SimSession probe(spec, machine);
            soloLength = probe.fastForward(
                ~0ull >> 1, core::WarmingMode::None);
        }
        const std::vector<core::ShardSpec> soloPlan =
            core::CheckpointLibrary::planShards(sc, soloLength, 3);
        const core::CheckpointLibrary solo =
            core::CheckpointLibrary::build(session, sc, soloPlan);
        const core::LibraryKey soloKey =
            core::LibraryKey::of(spec, machine, sc);
        const std::string soloPath =
            std::string(kRoot) + "/solo.smck";
        CHECK(solo.save(soloKey, soloPath, &error));

        error.clear();
        const auto refused =
            mp::MixLibrary::load(soloPath, mix, key, &error);
        CHECK(!refused.has_value());
        CHECK(error.find("solo") != std::string::npos);
    }

    // The mix library through the solo loader refuses by name.
    {
        error.clear();
        const auto refused =
            core::CheckpointLibrary::load(path, key, &error);
        CHECK(!refused.has_value());
        CHECK(error.find("MixLibrary") != std::string::npos);
    }
}

/**
 * v1 -> v2 migration: a version-1 file (no flavor byte — the format
 * before the co-run tier) must still load and reproduce the serial
 * estimate bit for bit. The v1 bytes are produced by downgrading a
 * freshly serialized v2 library: drop the flavor byte at offset 16,
 * patch the version field back to 1, reseal the checksum — v1 is
 * exactly v2 minus the flavor byte by construction.
 */
void
testCheckpointV1MigrationLoad()
{
    const uarch::MachineConfig machine =
        uarch::MachineConfig::eightWay();
    const core::SamplingConfig sc = mixSampling();
    const workloads::BenchmarkSpec spec =
        workloads::findBenchmark("chase-1", workloads::Scale::Mini);
    const core::LibraryKey key =
        core::LibraryKey::of(spec, machine, sc);

    std::uint64_t streamLength = 0;
    {
        core::SimSession probe(spec, machine);
        streamLength =
            probe.fastForward(~0ull >> 1, core::WarmingMode::None);
    }
    const std::vector<core::ShardSpec> plan =
        core::CheckpointLibrary::planShards(sc, streamLength, 3);
    core::SimSession session(spec, machine);
    const core::CheckpointLibrary built =
        core::CheckpointLibrary::build(session, sc, plan);

    const std::string path = std::string(kRoot) + "/v1.smck";
    std::string error;
    CHECK(built.save(key, path, &error));

    // Downgrade to v1 on disk.
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    CHECK(bytes.size() > 24);
    CHECK_EQ(bytes[8], std::uint8_t(2));  // version u32 LE
    CHECK_EQ(bytes[16], std::uint8_t(0)); // solo flavor byte
    bytes[8] = 1;
    bytes.erase(bytes.begin() + 16);
    writeFileBytes(path, bytes);
    resealChecksum(path);

    const auto migrated =
        core::CheckpointLibrary::load(path, key, &error);
    CHECK(migrated.has_value());

    const core::SystematicSampler solo(sc);
    const core::SessionFactory factory = [&spec, &machine] {
        return std::make_unique<core::SimSession>(spec, machine);
    };
    core::SimSession serialSession(spec, machine);
    const core::SmartsEstimate serial = solo.run(serialSession);
    exec::ThreadPool pool(2);
    const core::SmartsEstimate sharded =
        solo.runSharded(factory, *migrated, pool);
    CHECK(fingerprint(serial) == fingerprint(sharded));
}

} // namespace

int
main()
{
    fs::remove_all(kRoot);
    fs::create_directories(kRoot);

    testMixThreadDeterminism();
    testMixStoreColdVsWarm();
    testMixLibraryRoundtripAndRefusals();
    testCheckpointV1MigrationLoad();
    TEST_MAIN_SUMMARY();
}
